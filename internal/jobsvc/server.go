package jobsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mimir/internal/core"
	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/membership"
	"mimir/internal/metrics"
	"mimir/internal/pfs"
)

// Config describes a Server.
type Config struct {
	// Mesh builds (and rebuilds) the standing mesh. Required.
	Mesh MeshFactory
	// MemBytes is the node admission arena capacity: the sum of the memory
	// floors of all concurrently running jobs never exceeds it. 0 admits
	// everything immediately.
	MemBytes int64
	// FS is the simulated parallel file system checkpointed jobs write to
	// and resizes repartition. Nil creates a private one.
	FS *pfs.FS
	// Secret is the join-token secret (membership.SecretLen bytes). Nil
	// draws a fresh one, which is right for every daemon that does not need
	// tokens to survive its own restart.
	Secret []byte
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Server is the rank-0 side of the job service: it owns the standing mesh,
// the job queue, the membership coordinator, and the admin front door.
// Create one with NewServer, serve submitters with Serve (or drive Submit
// directly), stop with Shutdown.
//
// Elasticity: the server is the membership coordinator (rank 0 of every
// epoch). Resize, Leave, and the join admin op all funnel into one
// transition path that drains running jobs to the epoch barrier, plans the
// next epoch's seats, rebuilds or resizes the mesh, repartitions registered
// checkpoints to the new world size, and commits. Jobs submitted before or
// during a transition simply run on whichever epoch admits them — their
// done events say which.
type Server struct {
	cfg    Config
	arena  *mem.Arena
	secret []byte
	coord  *membership.Coordinator
	fs     *pfs.FS

	mu       sync.Mutex
	cond     *sync.Cond
	mesh     Mesh
	size     int
	epoch    uint64
	meshUp   bool
	running  int
	fatal    error
	closing  bool
	nextJob  uint32
	queue    []*job
	jobs     map[uint32]*job
	order    []uint32
	respawns int
	ckpts    map[string]*ckptInfo
	// attach maps member -> its seat in the incarnation being built (or
	// just built); parked holds rejoin waiters that arrived before their
	// member's fate was decided.
	attach map[membership.MemberID]attachReply
	parked map[membership.MemberID][]chan attachReply

	// transMu serializes epoch transitions: one resize/respawn at a time,
	// and Shutdown waits for the one in flight.
	transMu sync.Mutex

	jobsWG    sync.WaitGroup
	schedDone chan struct{}
	shutOnce  sync.Once

	// ctlMu serializes control sends on the mesh's rank-0 channel-0
	// endpoint, which concurrent job dispatches would otherwise share.
	ctlMu sync.Mutex

	lnMu sync.Mutex
	ln   net.Listener
}

// ckptInfo tracks a registered checkpoint: the world size its files are
// partitioned for and the hint that decodes them.
type ckptInfo struct {
	hint kvbuf.Hint
	size int
}

// attachReply is one member's answer at a transition: its seat in the new
// incarnation (with a freshly minted member token), or retirement.
type attachReply struct {
	remesh *Remesh
	token  string
	retire bool
}

type job struct {
	id    uint32
	spec  Spec
	state string
	err   string
	// events streams this job's lifecycle to its submitter. At most four
	// events ever flow (queued, running, done|error) before the channel is
	// closed by whichever finalizer settles the job, so the buffer makes
	// every send non-blocking: a slow or vanished submitter cannot stall
	// the scheduler.
	events chan Event
}

func (j *job) finish(state, errText string, ev Event) {
	j.state = state
	j.err = errText
	j.events <- ev
	close(j.events)
}

// NewServer bootstraps epoch 1 — builds the initial mesh with every seat
// credentialed — and starts the scheduler. The factory's transport must
// host rank 0: the admin front door and the result gather both live there.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Mesh == nil {
		return nil, errors.New("jobsvc: Config.Mesh is required")
	}
	size := cfg.Mesh.Size()
	if size < 1 {
		return nil, fmt.Errorf("jobsvc: invalid mesh size %d", size)
	}
	secret := cfg.Secret
	if len(secret) != membership.SecretLen {
		var err error
		if secret, err = membership.NewSecret(); err != nil {
			return nil, err
		}
	}
	fs := cfg.FS
	if fs == nil {
		fs = pfs.New(pfs.Config{})
	}
	s := &Server{
		cfg:       cfg,
		arena:     mem.NewArena(cfg.MemBytes),
		secret:    secret,
		coord:     membership.NewCoordinator(),
		fs:        fs,
		jobs:      make(map[uint32]*job),
		ckpts:     make(map[string]*ckptInfo),
		parked:    make(map[membership.MemberID][]chan attachReply),
		schedDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)

	plan := s.coord.Bootstrap(size, cfg.Mesh.WorkerKind())
	m, err := cfg.Mesh.Build(MeshSpec{Size: size, Epoch: plan.View.Epoch, Workers: s.credsFor(plan.View)})
	if err != nil {
		return nil, err
	}
	if cerr := s.checkMesh(m, size); cerr != nil {
		return nil, cerr
	}
	view := s.coord.Commit(plan)
	s.mesh = m
	s.size = view.Size()
	s.epoch = view.Epoch
	s.meshUp = true
	go s.scheduler()
	return s, nil
}

// credsFor mints a member credential for every worker seat of a view.
func (s *Server) credsFor(v membership.View) map[int]WorkerCred {
	creds := make(map[int]WorkerCred, len(v.Members))
	for _, mb := range v.Members {
		if mb.Rank == 0 {
			continue
		}
		creds[mb.Rank] = WorkerCred{Member: mb.ID, Token: membership.Token(s.secret, mb.ID)}
	}
	return creds
}

func (s *Server) checkMesh(m Mesh, size int) error {
	lr := m.Transport.LocalRanks()
	if len(lr) == 0 || lr[0] != 0 {
		if m.Close != nil {
			m.Close()
		}
		return fmt.Errorf("jobsvc: mesh transport hosts ranks %v; the server needs rank 0", lr)
	}
	if got := m.Transport.Size(); got != size {
		if m.Close != nil {
			m.Close()
		}
		return fmt.Errorf("jobsvc: mesh has %d ranks, want %d", got, size)
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Size returns the current mesh's rank count.
func (s *Server) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Epoch returns the committed membership epoch.
func (s *Server) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Respawns reports how many times the mesh has been rebuilt after a fatal
// fault. A service that has only ever run healthy jobs — however many
// elastic resizes it performed — reports 0.
func (s *Server) Respawns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.respawns
}

// JoinToken mints a generic join token an external worker can present to
// the join admin op (mimirctl join-token / mimir-worker -join-daemon).
func (s *Server) JoinToken() string { return membership.Token(s.secret, 0) }

// Members returns the committed membership view and the full event history.
func (s *Server) Members() (membership.View, []membership.Event) {
	return s.coord.View(), s.coord.Events()
}

// Submit queues a job and returns its id and event stream. The stream
// delivers queued → running → done|error and is then closed; the caller
// must drain it. Jobs run concurrently once admitted, so events of
// different jobs interleave arbitrarily while each job's own stream stays
// ordered.
func (s *Server) Submit(spec Spec) (uint32, <-chan Event, error) {
	spec.normalize()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := spec.validate(s.size, s.cfg.MemBytes); err != nil {
		return 0, nil, err
	}
	if s.closing {
		return 0, nil, errors.New("jobsvc: server is shutting down")
	}
	if s.fatal != nil {
		return 0, nil, fmt.Errorf("jobsvc: mesh is down for good: %w", s.fatal)
	}
	if spec.Checkpoint != "" {
		if len(s.mesh.Transport.LocalRanks()) != s.size {
			return 0, nil, errors.New("jobsvc: checkpointed jobs need a fully in-process mesh (worker processes cannot reach the server's file system)")
		}
		for _, j := range s.jobs {
			if j.spec.Checkpoint == spec.Checkpoint && (j.state == StateQueued || j.state == StateRunning) {
				return 0, nil, fmt.Errorf("jobsvc: checkpoint %q is in use by job %d", spec.Checkpoint, j.id)
			}
		}
	}
	s.nextJob++
	j := &job{id: s.nextJob, spec: spec, state: StateQueued, events: make(chan Event, 8)}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queue = append(s.queue, j)
	j.events <- Event{Event: EvQueued, Job: j.id}
	s.cond.Broadcast()
	return j.id, j.events, nil
}

// scheduler admits and dispatches queued jobs in FIFO order. Admission is
// strict head-of-line: the head job waits until the arena can reserve its
// memory floor, and jobs behind it wait their turn — a big job queued first
// is never starved by small jobs slipping past it. Dispatched jobs run
// concurrently; the scheduler immediately returns to the queue. During a
// transition meshUp is false, so queued jobs simply wait for the next epoch
// and run at its size.
func (s *Server) scheduler() {
	defer close(s.schedDone)
	for {
		s.mu.Lock()
		var j *job
		for {
			if s.fatal != nil || (s.closing && len(s.queue) == 0) {
				s.mu.Unlock()
				return
			}
			if len(s.queue) > 0 && s.meshUp {
				head := s.queue[0]
				if s.arena.TryGrab(head.spec.MemBytes) {
					j = head
					s.queue = s.queue[1:]
					break
				}
			}
			s.cond.Wait()
		}
		j.state = StateRunning
		m, epoch, size := s.mesh, s.epoch, s.size
		s.running++
		s.jobsWG.Add(1)
		s.mu.Unlock()
		j.events <- Event{Event: EvRunning, Job: j.id, Epoch: epoch, Size: size}
		go s.run(m, epoch, size, j)
	}
}

// run executes one admitted job to completion on the epoch's mesh and
// settles it. If the job died because the mesh died, a crash transition
// respawns the mesh (the dead member becomes an implicit leave).
func (s *Server) run(m Mesh, epoch uint64, size int, j *job) {
	defer s.jobsWG.Done()
	out, sum, err := s.dispatch(m, j)
	meshErr := meshError(m.Transport)

	s.mu.Lock()
	s.arena.Free(j.spec.MemBytes)
	s.running--
	if err == nil {
		if j.spec.Checkpoint != "" {
			s.ckpts[j.spec.Checkpoint] = &ckptInfo{hint: j.spec.ckptHint(), size: size}
		}
		ev := Event{Event: EvDone, Job: j.id, Output: string(out), Epoch: epoch, Size: size}
		if sum != nil {
			ev.Metrics = sumJSON(sum)
		}
		j.finish(StateDone, "", ev)
	} else {
		j.finish(StateError, err.Error(), Event{Event: EvError, Job: j.id, Error: err.Error(), Epoch: epoch, Size: size})
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	if err != nil && meshErr != nil {
		s.logf("jobsvc: job %d died with the mesh (%v); transitioning", j.id, meshErr)
		s.transition(transOpts{from: epoch, target: size, crash: true, suspect: j.spec.Crash})
	} else if err != nil {
		s.logf("jobsvc: job %d failed: %v", j.id, err)
	}
}

// dispatch announces the job to every remote rank over channel 0, then runs
// rank 0's own share of it.
func (s *Server) dispatch(m Mesh, j *job) ([]byte, *metrics.Summary, error) {
	tr := m.Transport
	msg, err := ctrlJSON(ctrlMsg{Op: opStart, Job: j.id, Spec: &j.spec})
	if err != nil {
		return nil, nil, err
	}
	local := make(map[int]bool)
	for _, r := range tr.LocalRanks() {
		local[r] = true
	}
	ep := tr.Endpoint(0)
	s.ctlMu.Lock()
	for r := 1; r < tr.Size(); r++ {
		if local[r] {
			continue // in-process ranks run inside execJob below
		}
		if err := ep.Send(r, ctrlTag, msg, 0); err != nil {
			s.ctlMu.Unlock()
			return nil, nil, fmt.Errorf("jobsvc: job %d start broadcast: %w", j.id, err)
		}
	}
	s.ctlMu.Unlock()
	return execJob(tr, j.id, j.spec, nil, s.fs)
}

func sumJSON(sum *metrics.Summary) json.RawMessage {
	var buf []byte
	w := &sliceWriter{b: &buf}
	if err := sum.WriteJSON(w); err != nil {
		return nil
	}
	return json.RawMessage(buf)
}

type sliceWriter struct{ b *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

// Resize transitions the mesh to target ranks, seating pending joiners and
// honoring leave requests along the way. It blocks through the epoch
// barrier (running jobs finish first) and returns the committed view.
// Resizing to the current size with nothing pending is a no-op.
func (s *Server) Resize(target int) (membership.View, error) {
	if err := s.transition(transOpts{target: target}); err != nil {
		return membership.View{}, err
	}
	return s.coord.View(), nil
}

// Leave retires a member at the next epoch barrier and transitions
// immediately, shrinking the world by one.
func (s *Server) Leave(id membership.MemberID) (membership.View, error) {
	if err := s.coord.RequestLeave(id); err != nil {
		return membership.View{}, err
	}
	s.mu.Lock()
	target := s.size - 1
	s.mu.Unlock()
	if err := s.transition(transOpts{target: target}); err != nil {
		return membership.View{}, err
	}
	return s.coord.View(), nil
}

// transOpts parameterizes one transition.
type transOpts struct {
	// from, when non-zero, is the epoch the caller observed dying: the
	// transition is skipped if the world has already moved past it. This is
	// what makes a crash during a resize respawn exactly once — the resize
	// and the crash race for the transition lock, the winner advances the
	// epoch, and the loser sees a world that already healed.
	from uint64
	// target is the next world size; < 0 means current size plus every
	// pending joiner.
	target int
	// crash marks a fault-driven transition: the old mesh is dead, members
	// are probed for liveness, and the respawn counter increments.
	crash bool
	// suspect is the rank the failing job implicates (Spec.Crash), the
	// liveness fallback for meshes that cannot probe processes.
	suspect int
}

// transition is the single path from one epoch to the next: drain to the
// barrier, plan seats, build the mesh (retrying failed attempts on fresh
// epochs), repartition checkpoints, commit.
func (s *Server) transition(o transOpts) error {
	s.transMu.Lock()
	defer s.transMu.Unlock()

	s.mu.Lock()
	if s.fatal != nil {
		err := s.fatal
		s.mu.Unlock()
		return fmt.Errorf("jobsvc: mesh is down for good: %w", err)
	}
	if s.closing {
		s.mu.Unlock()
		return errors.New("jobsvc: server is shutting down")
	}
	if o.from != 0 && o.from != s.epoch {
		// The incarnation the caller saw die is already history.
		s.mu.Unlock()
		return nil
	}
	target := o.target
	if target < 0 {
		target = s.size + len(s.coord.PendingJoins())
	}
	if target < 1 {
		s.mu.Unlock()
		return fmt.Errorf("jobsvc: cannot resize to %d ranks", target)
	}
	if !o.crash && target == s.size &&
		len(s.coord.PendingJoins()) == 0 && len(s.coord.LeaveRequests()) == 0 {
		s.mu.Unlock()
		return nil
	}
	// The epoch barrier: stop dispatching and wait out every running job.
	s.meshUp = false
	s.cond.Broadcast()
	for s.running > 0 && !s.closing {
		s.cond.Wait()
	}
	if s.closing {
		s.meshUp = true // the old mesh was never touched; let shutdown drain it
		s.cond.Broadcast()
		s.mu.Unlock()
		return errors.New("jobsvc: server is shutting down")
	}
	old := s.mesh
	oldSize := s.size
	s.mu.Unlock()

	graceful := !o.crash && meshError(old.Transport) == nil
	oldClosed := false
	var m Mesh
	var plan membership.Plan
	var err error
	const maxAttempts = 3
	for attempt := 0; ; attempt++ {
		plan, err = s.coord.Plan(target, s.aliveFn(old, o, attempt), s.cfg.Mesh.WorkerKind())
		if err != nil {
			break
		}
		m, err = s.buildMesh(old, plan, graceful && attempt == 0, &oldClosed)
		if err == nil {
			break
		}
		s.coord.Fail(plan, err.Error())
		s.logf("jobsvc: epoch %d build failed: %v", plan.View.Epoch, err)
		graceful = false // whatever state the old mesh was in, it is gone now
		oldClosed = true
		if attempt+1 >= maxAttempts {
			break
		}
	}
	if err != nil {
		s.fatalize(err)
		return err
	}

	s.rebalance(plan.View.Epoch, plan.View.Size())
	view := s.coord.Commit(plan)

	s.mu.Lock()
	s.mesh = m
	s.size = view.Size()
	s.epoch = view.Epoch
	s.meshUp = true
	if o.crash {
		s.respawns++
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	note := ""
	if o.crash {
		note = " (crash recovery)"
	}
	s.logf("jobsvc: epoch %d committed: %d -> %d ranks%s", view.Epoch, oldSize, view.Size(), note)
	return nil
}

// aliveFn is the liveness oracle a transition plans with. Graceful first
// attempts trust everyone; crash transitions and retries probe. Spawned
// members are probed through the mesh manager's process table; external
// joiners prove liveness by rejoining the admin socket (a live one's
// transport died with the mesh, so by the second attempt it has called
// back); in-process ranks fall back to the failing job's suspect rank.
func (s *Server) aliveFn(old Mesh, o transOpts, attempt int) func(membership.Member) bool {
	probe := o.crash || attempt > 0
	return func(mb membership.Member) bool {
		if mb.Rank == 0 {
			return true
		}
		if !probe {
			return true
		}
		if mb.Kind == membership.KindSpawned && old.Alive != nil {
			return old.Alive(mb.ID)
		}
		if mb.Kind == membership.KindJoined && attempt > 0 {
			return s.hasParked(mb.ID)
		}
		return mb.Rank != o.suspect
	}
}

func (s *Server) hasParked(id membership.MemberID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.parked[id]) > 0
}

// buildMesh produces the mesh for a plan: an in-place Resize when the old
// mesh's manager supports it (worker processes carry over), a factory
// rebuild otherwise.
func (s *Server) buildMesh(old Mesh, plan membership.Plan, graceful bool, oldClosed *bool) (Mesh, error) {
	oldView := s.coord.View()
	oldRank := make(map[membership.MemberID]int, len(oldView.Members))
	for _, mb := range oldView.Members {
		oldRank[mb.ID] = mb.Rank
	}
	joined := make(map[membership.MemberID]bool, len(plan.Joined))
	for _, mb := range plan.Joined {
		joined[mb.ID] = true
	}
	spec := ResizeSpec{
		Size:      plan.View.Size(),
		Epoch:     plan.View.Epoch,
		Graceful:  graceful,
		Survivors: make(map[int]Seat),
		Retire:    make(map[int]membership.MemberID),
		Fresh:     make(map[int]WorkerCred),
		Notify:    func(addr string) { s.publishAttach(plan, addr) },
	}
	for _, mb := range plan.View.Members {
		switch {
		case mb.Rank == 0:
		case joined[mb.ID] && mb.Kind != membership.KindJoined:
			// A fresh seat the manager fills by forking.
			spec.Fresh[mb.Rank] = WorkerCred{Member: mb.ID, Token: membership.Token(s.secret, mb.ID)}
		case !joined[mb.ID]:
			spec.Survivors[oldRank[mb.ID]] = Seat{Rank: mb.Rank, Member: mb.ID}
		}
		// Joined members of KindJoined attach themselves through the admin
		// socket: publishAttach hands them their seat.
	}
	for _, mb := range plan.Retired {
		spec.Retire[oldRank[mb.ID]] = mb.ID
	}

	if old.Resize != nil {
		*oldClosed = true // Resize consumes the old incarnation, success or not
		return old.Resize(spec)
	}
	if !*oldClosed {
		*oldClosed = true
		if old.Close != nil {
			old.Close()
		}
	}
	m, err := s.cfg.Mesh.Build(MeshSpec{Size: spec.Size, Epoch: spec.Epoch, Workers: s.credsFor(plan.View)})
	if err != nil {
		return Mesh{}, err
	}
	if cerr := s.checkMesh(m, spec.Size); cerr != nil {
		return Mesh{}, cerr
	}
	return m, nil
}

// publishAttach records every member's fate for the incarnation being built
// and answers rejoin waiters already parked. Survivors' attachments are
// published even on graceful resizes: a survivor that missed its remesh
// directive recovers through the admin socket instead of being retired.
func (s *Server) publishAttach(plan membership.Plan, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.attach = make(map[membership.MemberID]attachReply)
	for _, mb := range plan.View.Members {
		if mb.Rank == 0 {
			continue
		}
		s.attach[mb.ID] = attachReply{
			remesh: &Remesh{Addr: addr, Rank: mb.Rank, Size: plan.View.Size(), Epoch: plan.View.Epoch},
			token:  membership.Token(s.secret, mb.ID),
		}
	}
	for _, mb := range plan.Retired {
		s.attach[mb.ID] = attachReply{retire: true}
	}
	for _, mb := range plan.Lost {
		// A parked waiter for a member planned as lost is a process that
		// called back after the plan was cast: tell it to exit rather than
		// leave it hanging. If it was truly dead nobody reads the answer.
		s.attach[mb.ID] = attachReply{retire: true}
	}
	for id, waiters := range s.parked {
		if r, ok := s.attach[id]; ok {
			for _, ch := range waiters {
				ch <- r
			}
			delete(s.parked, id)
		}
	}
}

// rebalance repartitions every registered checkpoint to the new world size
// so jobs restoring from them keep working across resizes. Failures are
// logged, not fatal: a checkpoint that failed to repartition simply will
// not restore at the new size and its next job recomputes from scratch.
func (s *Server) rebalance(epoch uint64, newSize int) {
	s.mu.Lock()
	type item struct {
		name string
		info *ckptInfo
	}
	var items []item
	for name, info := range s.ckpts {
		if info.size != newSize {
			items = append(items, item{name, info})
		}
	}
	fs := s.fs
	s.mu.Unlock()
	for _, it := range items {
		ck := core.Checkpoint{FS: fs, Name: it.name}
		st, err := core.RepartitionCheckpoint(fs, nil, ck, it.info.hint, it.info.size, newSize, nil)
		if err != nil {
			s.logf("jobsvc: rebalancing checkpoint %q for epoch %d: %v", it.name, epoch, err)
			s.coord.RecordRebalance(epoch, fmt.Sprintf("%s: failed: %v", it.name, err))
			s.mu.Lock()
			delete(s.ckpts, it.name)
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		it.info.size = newSize
		s.mu.Unlock()
		detail := fmt.Sprintf("%s: %d -> %d ranks, %d records, %d of %d bytes moved",
			it.name, st.OldSize, st.NewSize, st.Records, st.BytesMoved, st.BytesIn)
		s.coord.RecordRebalance(epoch, detail)
		s.logf("jobsvc: rebalanced checkpoint %s", detail)
	}
}

// fatalize marks the mesh permanently down and fails the queue.
func (s *Server) fatalize(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fatal = err
	for _, j := range s.queue {
		j.finish(StateError, err.Error(),
			Event{Event: EvError, Job: j.id, Error: "jobsvc: mesh transition failed: " + err.Error()})
	}
	s.queue = nil
	// Parked rejoiners will never get a seat.
	for id, waiters := range s.parked {
		for _, ch := range waiters {
			ch <- attachReply{retire: true}
		}
		delete(s.parked, id)
	}
	s.cond.Broadcast()
	s.logf("jobsvc: mesh is down for good: %v", err)
}

// StatusSnapshot returns the current daemon-wide view.
func (s *Server) StatusSnapshot() *Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &Status{
		Size:        s.size,
		Epoch:       s.epoch,
		Respawns:    s.respawns,
		MemUsed:     s.arena.Used(),
		MemCapacity: s.cfg.MemBytes,
	}
	for _, id := range s.order {
		j := s.jobs[id]
		st.Jobs = append(st.Jobs, JobStatus{Job: j.id, State: j.state, Error: j.err})
	}
	return st
}

// Shutdown drains the service: no new submissions, queued jobs still run,
// running jobs finish, workers are told to exit, and the mesh is torn down.
// Blocks until all of that is done. Safe to call more than once and
// concurrently with Serve, whose listener it closes.
func (s *Server) Shutdown() {
	s.shutOnce.Do(s.shutdown)
}

func (s *Server) shutdown() {
	s.mu.Lock()
	s.closing = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.schedDone
	s.jobsWG.Wait()
	// Let an in-flight transition finish (new ones refuse while closing).
	s.transMu.Lock()
	defer s.transMu.Unlock()

	s.mu.Lock()
	m := s.mesh
	healthy := s.meshUp && s.fatal == nil && meshError(m.Transport) == nil
	for id, waiters := range s.parked {
		for _, ch := range waiters {
			ch <- attachReply{retire: true}
		}
		delete(s.parked, id)
	}
	s.mu.Unlock()
	if healthy {
		// Tell the workers this is a shutdown, not a crash, so they exit
		// their control loops cleanly. Best-effort: a worker that died
		// anyway is reaped by Mesh.Close.
		msg, _ := ctrlJSON(ctrlMsg{Op: opShutdown})
		local := make(map[int]bool)
		for _, r := range m.Transport.LocalRanks() {
			local[r] = true
		}
		ep := m.Transport.Endpoint(0)
		s.ctlMu.Lock()
		for r := 1; r < m.Transport.Size(); r++ {
			if !local[r] {
				ep.Send(r, ctrlTag, msg, 0)
			}
		}
		s.ctlMu.Unlock()
	}
	if m.Close != nil {
		m.Close()
	}
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()
	s.logf("jobsvc: shut down")
}

func (s *Server) isClosing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

// Serve accepts admin connections until Shutdown closes the listener. Each
// connection carries one request; submit replies stream the job's events.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosing() {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) handleConn(conn net.Conn) {
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	var req Request
	if err := dec.Decode(&req); err != nil {
		enc.Encode(Event{Event: EvError, Error: "jobsvc: bad request: " + err.Error()})
		return
	}
	fail := func(err error) {
		enc.Encode(Event{Event: EvError, Error: err.Error()})
	}
	switch req.Op {
	case "submit":
		if req.Spec == nil {
			fail(errors.New("jobsvc: submit needs a spec"))
			return
		}
		_, events, err := s.Submit(*req.Spec)
		if err != nil {
			fail(err)
			return
		}
		for ev := range events {
			if enc.Encode(ev) != nil {
				return // submitter hung up; the job runs on regardless
			}
		}
	case "status":
		enc.Encode(Event{Event: EvStatus, Status: s.StatusSnapshot()})
	case "resize":
		view, err := s.Resize(req.Size)
		if err != nil {
			fail(err)
			return
		}
		enc.Encode(Event{Event: EvResized, Epoch: view.Epoch, Size: view.Size(), View: &view})
	case "members":
		view, history := s.Members()
		enc.Encode(Event{Event: EvMembers, Epoch: view.Epoch, Size: view.Size(), View: &view, History: history})
	case "join-token":
		enc.Encode(Event{Event: EvToken, Token: s.JoinToken()})
	case "join":
		s.handleJoin(enc, req)
	case "rejoin":
		s.handleRejoin(enc, req)
	case "leave":
		view, err := s.Leave(req.Member)
		if err != nil {
			fail(err)
			return
		}
		enc.Encode(Event{Event: EvResized, Epoch: view.Epoch, Size: view.Size(), View: &view})
	case "shutdown":
		s.Shutdown()
		enc.Encode(Event{Event: EvOK})
	default:
		fail(fmt.Errorf("jobsvc: unknown op %q", req.Op))
	}
}

// handleJoin admits an external worker: verify the generic join token, park
// the request, grow the world by one transition, and answer with the seat
// and a member token for future rejoins.
//
// The transition runs on its own goroutine, not inline: the new mesh only
// comes up once every rank dials its bootstrap — including the joiner, which
// is blocked on this very reply. Answering the moment the build publishes
// the seat is what breaks that cycle.
func (s *Server) handleJoin(enc *json.Encoder, req Request) {
	id, err := membership.VerifyToken(s.secret, req.Token)
	if err != nil || id != 0 {
		enc.Encode(Event{Event: EvError, Error: "jobsvc: join needs a valid generic join token"})
		return
	}
	s.mu.Lock()
	elastic := s.mesh.Resize != nil
	s.mu.Unlock()
	if !elastic {
		// Factory-rebuilt meshes (in-process worlds) fill every seat
		// themselves; there is no seat an external process could take.
		enc.Encode(Event{Event: EvError, Error: "jobsvc: this daemon's mesh cannot seat external joiners"})
		return
	}
	member := s.coord.AddPending(membership.KindJoined, req.Addr)
	ch := make(chan attachReply, 1)
	s.mu.Lock()
	s.parked[member] = append(s.parked[member], ch)
	s.mu.Unlock()
	transErr := make(chan error, 1)
	go func() { transErr <- s.transition(transOpts{target: -1}) }()
	select {
	case r := <-ch:
		if r.retire || r.remesh == nil {
			enc.Encode(Event{Event: EvError, Error: "jobsvc: join lost its seat in a concurrent transition"})
			return
		}
		enc.Encode(Event{Event: EvJoined, Member: member, Token: r.token, Remesh: r.remesh,
			Epoch: r.remesh.Epoch, Size: r.remesh.Size})
	case err := <-transErr:
		if err == nil {
			// A successful transition published the seat before it returned;
			// the select just raced the two ready channels.
			select {
			case r := <-ch:
				if r.remesh != nil && !r.retire {
					enc.Encode(Event{Event: EvJoined, Member: member, Token: r.token, Remesh: r.remesh,
						Epoch: r.remesh.Epoch, Size: r.remesh.Size})
					return
				}
			default:
			}
			err = errors.New("transition did not seat this joiner")
		}
		s.coord.DropPending(member)
		s.unpark(member, ch)
		enc.Encode(Event{Event: EvError, Error: "jobsvc: join: " + err.Error()})
	}
}

// unpark removes one waiter channel for a member.
func (s *Server) unpark(member membership.MemberID, ch chan attachReply) {
	s.mu.Lock()
	defer s.mu.Unlock()
	waiters := s.parked[member]
	for i, w := range waiters {
		if w == ch {
			s.parked[member] = append(waiters[:i], waiters[i+1:]...)
			break
		}
	}
	if len(s.parked[member]) == 0 {
		delete(s.parked, member)
	}
}

// handleRejoin reattaches a known member after its incarnation died. If a
// transition already decided the member's fate the answer is immediate;
// otherwise the request parks until the next transition publishes seats —
// and if the mesh is dead with no transition running, the rejoin itself
// kicks one (the worker noticed the fault before a dispatched job did).
func (s *Server) handleRejoin(enc *json.Encoder, req Request) {
	id, err := membership.VerifyToken(s.secret, req.Token)
	if err != nil || id == 0 || id != req.Member {
		enc.Encode(Event{Event: EvError, Error: "jobsvc: rejoin needs the member's own token"})
		return
	}
	s.mu.Lock()
	healthy := s.meshUp && meshError(s.mesh.Transport) == nil
	// A published attachment answers immediately unless it describes the
	// incarnation the member just lost — a dead current epoch means the real
	// answer comes from the transition that is (or is about to be) running.
	if r, ok := s.attach[id]; ok && (r.retire || healthy || r.remesh.Epoch > s.epoch) {
		s.mu.Unlock()
		s.encodeAttach(enc, id, r)
		return
	}
	if !s.coord.HasMember(id) {
		hasPending := false
		for _, mb := range s.coord.PendingJoins() {
			if mb.ID == id {
				hasPending = true
				break
			}
		}
		if !hasPending {
			s.mu.Unlock()
			enc.Encode(Event{Event: EvRetired, Member: id})
			return
		}
	}
	ch := make(chan attachReply, 1)
	s.parked[id] = append(s.parked[id], ch)
	kick := s.meshUp && !healthy
	epoch, size := s.epoch, s.size
	s.mu.Unlock()
	if kick {
		// The worker noticed the fault before any dispatched job did.
		go s.transition(transOpts{from: epoch, target: size, crash: true})
	}
	select {
	case r := <-ch:
		s.unpark(id, ch)
		s.encodeAttach(enc, id, r)
	case <-time.After(2 * time.Minute):
		s.unpark(id, ch)
		enc.Encode(Event{Event: EvError, Error: "jobsvc: no transition seated this member in time"})
	}
}

func (s *Server) encodeAttach(enc *json.Encoder, id membership.MemberID, r attachReply) {
	if r.retire || r.remesh == nil {
		enc.Encode(Event{Event: EvRetired, Member: id})
		return
	}
	enc.Encode(Event{Event: EvRemesh, Member: id, Token: r.token, Remesh: r.remesh,
		Epoch: r.remesh.Epoch, Size: r.remesh.Size})
}
