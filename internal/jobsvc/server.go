package jobsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"mimir/internal/mem"
	"mimir/internal/metrics"
	"mimir/internal/transport"
)

// Mesh is one incarnation of the standing rank mesh: the rank-0 side's
// transport plus whatever teardown releases the incarnation's resources
// (reaping worker processes, joining worker goroutines). Close must be safe
// to call on a mesh that already died.
type Mesh struct {
	Transport transport.Transport
	Close     func()
}

// MeshFactory builds a fresh mesh incarnation. The server calls it once at
// startup and again after every fatal mesh fault; each call must produce a
// transport hosting rank 0 with the same world size.
type MeshFactory func() (Mesh, error)

// Config describes a Server.
type Config struct {
	// Mesh builds (and rebuilds) the standing mesh. Required.
	Mesh MeshFactory
	// MemBytes is the node admission arena capacity: the sum of the memory
	// floors of all concurrently running jobs never exceeds it. 0 admits
	// everything immediately.
	MemBytes int64
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Server is the rank-0 side of the job service: it owns the standing mesh,
// the job queue, and the admin front door. Create one with NewServer, serve
// submitters with Serve (or drive Submit directly), stop with Shutdown.
type Server struct {
	cfg   Config
	arena *mem.Arena
	size  int

	mu         sync.Mutex
	cond       *sync.Cond
	mesh       Mesh
	meshGen    int
	meshUp     bool
	respawning bool
	fatal      error
	closing    bool
	nextJob    uint32
	queue      []*job
	jobs       map[uint32]*job
	order      []uint32
	respawns   int

	jobsWG    sync.WaitGroup
	schedDone chan struct{}
	shutOnce  sync.Once

	// ctlMu serializes control sends on the mesh's rank-0 channel-0
	// endpoint, which concurrent job dispatches would otherwise share.
	ctlMu sync.Mutex

	lnMu sync.Mutex
	ln   net.Listener
}

type job struct {
	id    uint32
	spec  Spec
	state string
	err   string
	// events streams this job's lifecycle to its submitter. At most four
	// events ever flow (queued, running, done|error) before the channel is
	// closed by whichever finalizer settles the job, so the buffer makes
	// every send non-blocking: a slow or vanished submitter cannot stall
	// the scheduler.
	events chan Event
}

func (j *job) finish(state, errText string, ev Event) {
	j.state = state
	j.err = errText
	j.events <- ev
	close(j.events)
}

// NewServer builds the initial mesh and starts the scheduler. The factory's
// transport must host rank 0 — the admin front door and the result gather
// both live there.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Mesh == nil {
		return nil, errors.New("jobsvc: Config.Mesh is required")
	}
	m, err := cfg.Mesh()
	if err != nil {
		return nil, err
	}
	if err := checkMesh(m); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		arena:     mem.NewArena(cfg.MemBytes),
		size:      m.Transport.Size(),
		mesh:      m,
		meshUp:    true,
		jobs:      make(map[uint32]*job),
		schedDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.scheduler()
	return s, nil
}

func checkMesh(m Mesh) error {
	lr := m.Transport.LocalRanks()
	if len(lr) == 0 || lr[0] != 0 {
		if m.Close != nil {
			m.Close()
		}
		return fmt.Errorf("jobsvc: mesh transport hosts ranks %v; the server needs rank 0", lr)
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Size returns the mesh's rank count.
func (s *Server) Size() int { return s.size }

// Respawns reports how many times the mesh has been rebuilt after a fatal
// fault. A service that has only ever run healthy jobs reports 0.
func (s *Server) Respawns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.respawns
}

// Submit queues a job and returns its id and event stream. The stream
// delivers queued → running → done|error and is then closed; the caller
// must drain it. Jobs run concurrently once admitted, so events of
// different jobs interleave arbitrarily while each job's own stream stays
// ordered.
func (s *Server) Submit(spec Spec) (uint32, <-chan Event, error) {
	spec.normalize()
	if err := spec.validate(s.size, s.cfg.MemBytes); err != nil {
		return 0, nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return 0, nil, errors.New("jobsvc: server is shutting down")
	}
	if s.fatal != nil {
		return 0, nil, fmt.Errorf("jobsvc: mesh is down for good: %w", s.fatal)
	}
	s.nextJob++
	j := &job{id: s.nextJob, spec: spec, state: StateQueued, events: make(chan Event, 8)}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queue = append(s.queue, j)
	j.events <- Event{Event: EvQueued, Job: j.id}
	s.cond.Broadcast()
	return j.id, j.events, nil
}

// scheduler admits and dispatches queued jobs in FIFO order. Admission is
// strict head-of-line: the head job waits until the arena can reserve its
// memory floor, and jobs behind it wait their turn — a big job queued first
// is never starved by small jobs slipping past it. Dispatched jobs run
// concurrently; the scheduler immediately returns to the queue.
func (s *Server) scheduler() {
	defer close(s.schedDone)
	for {
		s.mu.Lock()
		var j *job
		for {
			if s.fatal != nil || (s.closing && len(s.queue) == 0) {
				s.mu.Unlock()
				return
			}
			if len(s.queue) > 0 && s.meshUp {
				head := s.queue[0]
				if s.arena.TryGrab(head.spec.MemBytes) {
					j = head
					s.queue = s.queue[1:]
					break
				}
			}
			s.cond.Wait()
		}
		j.state = StateRunning
		m, gen := s.mesh, s.meshGen
		s.jobsWG.Add(1)
		s.mu.Unlock()
		j.events <- Event{Event: EvRunning, Job: j.id}
		go s.run(m, gen, j)
	}
}

// run executes one admitted job to completion on mesh incarnation gen and
// settles it. If the job died because the mesh died, the mesh is respawned.
func (s *Server) run(m Mesh, gen int, j *job) {
	defer s.jobsWG.Done()
	out, sum, err := s.dispatch(m, j)
	meshErr := meshError(m.Transport)

	s.mu.Lock()
	s.arena.Free(j.spec.MemBytes)
	s.cond.Broadcast()
	if err == nil {
		ev := Event{Event: EvDone, Job: j.id, Output: string(out)}
		if sum != nil {
			ev.Metrics = sumJSON(sum)
		}
		j.finish(StateDone, "", ev)
	} else {
		j.finish(StateError, err.Error(), Event{Event: EvError, Job: j.id, Error: err.Error()})
	}
	s.mu.Unlock()

	if err != nil && meshErr != nil {
		s.logf("jobsvc: job %d died with the mesh (%v); respawning", j.id, meshErr)
		s.respawn(gen)
	} else if err != nil {
		s.logf("jobsvc: job %d failed: %v", j.id, err)
	}
}

// dispatch announces the job to every remote rank over channel 0, then runs
// rank 0's own share of it.
func (s *Server) dispatch(m Mesh, j *job) ([]byte, *metrics.Summary, error) {
	tr := m.Transport
	msg, err := json.Marshal(ctrlMsg{Op: opStart, Job: j.id, Spec: &j.spec})
	if err != nil {
		return nil, nil, err
	}
	local := make(map[int]bool)
	for _, r := range tr.LocalRanks() {
		local[r] = true
	}
	ep := tr.Endpoint(0)
	s.ctlMu.Lock()
	for r := 1; r < tr.Size(); r++ {
		if local[r] {
			continue // in-process ranks run inside execJob below
		}
		if err := ep.Send(r, ctrlTag, msg, 0); err != nil {
			s.ctlMu.Unlock()
			return nil, nil, fmt.Errorf("jobsvc: job %d start broadcast: %w", j.id, err)
		}
	}
	s.ctlMu.Unlock()
	return execJob(tr, j.id, j.spec, nil)
}

func sumJSON(sum *metrics.Summary) json.RawMessage {
	var buf []byte
	w := &sliceWriter{b: &buf}
	if err := sum.WriteJSON(w); err != nil {
		return nil
	}
	return json.RawMessage(buf)
}

type sliceWriter struct{ b *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

// respawn rebuilds the mesh after incarnation gen died. Exactly one caller
// wins (jobs failing together all report the same death); the rest return
// immediately. While the rebuild runs the scheduler dispatches nothing, so
// queued jobs simply wait out the outage. A factory failure is fatal: every
// queued job is failed and future submits are refused.
func (s *Server) respawn(gen int) {
	s.mu.Lock()
	if s.meshGen != gen || s.respawning || s.closing {
		s.mu.Unlock()
		return
	}
	s.respawning = true
	s.meshUp = false
	old := s.mesh
	s.mu.Unlock()

	if old.Close != nil {
		old.Close()
	}
	m, err := s.cfg.Mesh()
	if err == nil {
		if cerr := checkMesh(m); cerr != nil {
			err = cerr
		} else if m.Transport.Size() != s.size {
			err = fmt.Errorf("jobsvc: respawned mesh has %d ranks, want %d", m.Transport.Size(), s.size)
			if m.Close != nil {
				m.Close()
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.respawning = false
	if err != nil {
		s.fatal = err
		for _, j := range s.queue {
			j.finish(StateError, err.Error(),
				Event{Event: EvError, Job: j.id, Error: "jobsvc: mesh respawn failed: " + err.Error()})
		}
		s.queue = nil
		s.cond.Broadcast()
		s.logf("jobsvc: mesh respawn failed: %v", err)
		return
	}
	s.mesh = m
	s.meshGen++
	s.meshUp = true
	s.respawns++
	s.cond.Broadcast()
	s.logf("jobsvc: mesh respawned (respawn #%d)", s.respawns)
}

// StatusSnapshot returns the current daemon-wide view.
func (s *Server) StatusSnapshot() *Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &Status{
		Size:        s.size,
		Respawns:    s.respawns,
		MemUsed:     s.arena.Used(),
		MemCapacity: s.cfg.MemBytes,
	}
	for _, id := range s.order {
		j := s.jobs[id]
		st.Jobs = append(st.Jobs, JobStatus{Job: j.id, State: j.state, Error: j.err})
	}
	return st
}

// Shutdown drains the service: no new submissions, queued jobs still run,
// running jobs finish, workers are told to exit, and the mesh is torn down.
// Blocks until all of that is done. Safe to call more than once and
// concurrently with Serve, whose listener it closes.
func (s *Server) Shutdown() {
	s.shutOnce.Do(s.shutdown)
}

func (s *Server) shutdown() {
	s.mu.Lock()
	s.closing = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.schedDone
	s.jobsWG.Wait()

	s.mu.Lock()
	m := s.mesh
	healthy := s.meshUp && s.fatal == nil && meshError(m.Transport) == nil
	s.mu.Unlock()
	if healthy {
		// Tell the workers this is a shutdown, not a crash, so they exit
		// their control loops cleanly. Best-effort: a worker that died
		// anyway is reaped by Mesh.Close.
		msg, _ := json.Marshal(ctrlMsg{Op: opShutdown})
		local := make(map[int]bool)
		for _, r := range m.Transport.LocalRanks() {
			local[r] = true
		}
		ep := m.Transport.Endpoint(0)
		s.ctlMu.Lock()
		for r := 1; r < m.Transport.Size(); r++ {
			if !local[r] {
				ep.Send(r, ctrlTag, msg, 0)
			}
		}
		s.ctlMu.Unlock()
	}
	if m.Close != nil {
		m.Close()
	}
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()
	s.logf("jobsvc: shut down")
}

func (s *Server) isClosing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

// Serve accepts admin connections until Shutdown closes the listener. Each
// connection carries one request; submit replies stream the job's events.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosing() {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) handleConn(conn net.Conn) {
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	var req Request
	if err := dec.Decode(&req); err != nil {
		enc.Encode(Event{Event: EvError, Error: "jobsvc: bad request: " + err.Error()})
		return
	}
	switch req.Op {
	case "submit":
		if req.Spec == nil {
			enc.Encode(Event{Event: EvError, Error: "jobsvc: submit needs a spec"})
			return
		}
		_, events, err := s.Submit(*req.Spec)
		if err != nil {
			enc.Encode(Event{Event: EvError, Error: err.Error()})
			return
		}
		for ev := range events {
			if enc.Encode(ev) != nil {
				return // submitter hung up; the job runs on regardless
			}
		}
	case "status":
		enc.Encode(Event{Event: EvStatus, Status: s.StatusSnapshot()})
	case "shutdown":
		s.Shutdown()
		enc.Encode(Event{Event: EvOK})
	default:
		enc.Encode(Event{Event: EvError, Error: fmt.Sprintf("jobsvc: unknown op %q", req.Op)})
	}
}
