package jobsvc

import (
	"bytes"
	"net"
	"testing"
	"time"

	"mimir/internal/driver"
	"mimir/internal/membership"
	"mimir/internal/mpi"
	"mimir/internal/simtime"
)

// Elastic membership scenarios on in-process meshes: grow/shrink through
// the epoch barrier, crash-as-implicit-leave, checkpoint repartitioning
// across resizes, and the crash/resize race (the double-respawn guard).

// referenceAt computes the solo ground truth for spec on a fresh in-process
// world of the given size. Output is byte-identical per (spec, size): the
// corpus splits by rank, so different sizes count different corpora.
func referenceAt(t *testing.T, spec Spec, size int) []byte {
	t.Helper()
	spec.normalize()
	cfg, err := spec.config(size)
	if err != nil {
		t.Fatal(err)
	}
	world := mpi.NewWorld(mpi.Config{Size: size, Net: simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9}})
	out, err := driver.WordCount(world, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("reference run produced no output")
	}
	return out
}

// runOne submits spec and drains it to a successful settle, returning the
// final event (output, epoch, size).
func runOne(t *testing.T, s *Server, spec Spec) Event {
	t.Helper()
	_, events, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := drain(t, events)
	if final.Event != EvDone {
		t.Fatalf("job settled as %s: %s", final.Event, final.Error)
	}
	return final
}

// TestServerResizeGrowShrink walks the mesh 4 -> 6 -> 3 through Resize,
// asserting each epoch's jobs are byte-identical to a fixed-size run of the
// same world size and that elasticity never counts as a respawn.
func TestServerResizeGrowShrink(t *testing.T) {
	for _, mesh := range []struct {
		name    string
		factory MeshFactory
	}{
		{"local", LocalMesh(testRanks)},
		{"tcp", tcpMesh(testRanks)},
	} {
		t.Run(mesh.name, func(t *testing.T) {
			s := newTestServer(t, mesh.factory, 0)
			epoch0 := s.Epoch()

			for i, target := range []int{6, 3} {
				view, err := s.Resize(target)
				if err != nil {
					t.Fatalf("resize to %d: %v", target, err)
				}
				if view.Size() != target || s.Size() != target {
					t.Fatalf("resize to %d left %d ranks (view %d)", target, s.Size(), view.Size())
				}
				if view.Epoch <= epoch0 {
					t.Fatalf("resize %d did not advance the epoch (%d -> %d)", target, epoch0, view.Epoch)
				}
				epoch0 = view.Epoch

				spec := testSpec(uint64(40 + i))
				final := runOne(t, s, spec)
				if final.Size != target || final.Epoch != view.Epoch {
					t.Fatalf("job ran at size %d epoch %d, want %d at %d",
						final.Size, final.Epoch, target, view.Epoch)
				}
				if !bytes.Equal([]byte(final.Output), referenceAt(t, spec, target)) {
					t.Fatalf("output at size %d differs from the fixed-size run", target)
				}
			}

			// Resizing to the current size with nothing pending is a no-op:
			// no epoch burned, no mesh rebuilt.
			view, err := s.Resize(3)
			if err != nil {
				t.Fatal(err)
			}
			if view.Epoch != epoch0 {
				t.Fatalf("no-op resize advanced the epoch %d -> %d", epoch0, view.Epoch)
			}
			if s.Respawns() != 0 {
				t.Fatalf("elastic resizes counted as %d respawns", s.Respawns())
			}
			if _, err := s.Resize(0); err == nil {
				t.Fatal("resize to 0 ranks accepted")
			}
		})
	}
}

// TestServerResizeDrainsToBarrier pins the epoch barrier: a resize issued
// while a job runs commits only after the job settles, and the job finishes
// on the epoch and size it was dispatched at.
func TestServerResizeDrainsToBarrier(t *testing.T) {
	s := newTestServer(t, LocalMesh(testRanks), 0)
	spec := testSpec(50)
	spec.Bytes = 1 << 18 // big enough that the resize genuinely overlaps it
	_, events, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	for ev := range events {
		if ev.Event == EvRunning {
			if ev.Size != testRanks {
				t.Fatalf("job dispatched at size %d, want %d", ev.Size, testRanks)
			}
			break
		}
	}

	view, err := s.Resize(6)
	if err != nil {
		t.Fatal(err)
	}
	// The barrier settles the running job — its done event is buffered on
	// its stream — before the transition touches the mesh, so by the time
	// Resize returns the final event must already be waiting.
	select {
	case final := <-events:
		if final.Event != EvDone {
			t.Fatalf("job settled as %s: %s", final.Event, final.Error)
		}
		if final.Size != testRanks {
			t.Fatalf("job finished at size %d, want the pre-resize size %d", final.Size, testRanks)
		}
		if final.Epoch >= view.Epoch {
			t.Fatalf("job epoch %d not older than the resize epoch %d", final.Epoch, view.Epoch)
		}
		if !bytes.Equal([]byte(final.Output), referenceAt(t, spec, testRanks)) {
			t.Fatal("job that overlapped the resize lost byte-identity with its fixed-size run")
		}
	default:
		t.Fatal("Resize returned before the running job settled (epoch barrier broken)")
	}

	after := runOne(t, s, testSpec(51))
	if after.Size != 6 {
		t.Fatalf("post-resize job ran at size %d, want 6", after.Size)
	}
}

// TestServerLeaveRetiresMember drains a voluntary leave: the member is gone
// from the committed view, the world is one rank smaller, and the history
// records the leave.
func TestServerLeaveRetiresMember(t *testing.T) {
	s := newTestServer(t, LocalMesh(testRanks), 0)
	view, _ := s.Members()
	leaver := view.Members[len(view.Members)-1].ID

	got, err := s.Leave(leaver)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != testRanks-1 {
		t.Fatalf("world is %d ranks after leave, want %d", got.Size(), testRanks-1)
	}
	for _, mb := range got.Members {
		if mb.ID == leaver {
			t.Fatalf("member %d still seated after leaving", leaver)
		}
	}
	_, hist := s.Members()
	sawLeave := false
	for _, ev := range hist {
		if ev.Kind == membership.EvLeave && ev.Member == leaver {
			sawLeave = true
		}
	}
	if !sawLeave {
		t.Fatalf("history has no leave event for member %d: %+v", leaver, hist)
	}

	spec := testSpec(60)
	final := runOne(t, s, spec)
	if !bytes.Equal([]byte(final.Output), referenceAt(t, spec, testRanks-1)) {
		t.Fatal("post-leave output differs from the fixed-size run")
	}
	if s.Respawns() != 0 {
		t.Fatalf("voluntary leave counted as %d respawns", s.Respawns())
	}
}

// TestServerCrashIsImplicitLeave pins the membership view of a crash: the
// dead member is recorded as an implicit leave, a fresh member fills its
// seat (the world size holds), and exactly one respawn happens.
func TestServerCrashIsImplicitLeave(t *testing.T) {
	s := newTestServer(t, tcpMesh(testRanks), 0)
	before, _ := s.Members()
	suspect := membership.MemberID(0)
	for _, mb := range before.Members {
		if mb.Rank == 2 {
			suspect = mb.ID
		}
	}

	crash := testSpec(70)
	crash.Crash = 2
	_, events, err := s.Submit(crash)
	if err != nil {
		t.Fatal(err)
	}
	if final := drain(t, events); final.Event != EvError {
		t.Fatalf("crashed job settled as %s", final.Event)
	}
	deadline := time.Now().Add(30 * time.Second)
	for s.Respawns() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("mesh not respawned (respawns = %d)", s.Respawns())
		}
		time.Sleep(10 * time.Millisecond)
	}

	after, hist := s.Members()
	if after.Size() != testRanks {
		t.Fatalf("crash shrank the world to %d ranks, want %d (implicit leave + replacement)",
			after.Size(), testRanks)
	}
	for _, mb := range after.Members {
		if mb.ID == suspect {
			t.Fatalf("crashed member %d still seated", suspect)
		}
	}
	sawImplicit := false
	for _, ev := range hist {
		if ev.Kind == membership.EvImplicitLeave && ev.Member == suspect {
			sawImplicit = true
		}
	}
	if !sawImplicit {
		t.Fatalf("history has no implicit-leave for member %d: %+v", suspect, hist)
	}

	spec := testSpec(71)
	final := runOne(t, s, spec)
	if !bytes.Equal([]byte(final.Output), referenceAt(t, spec, testRanks)) {
		t.Fatal("post-crash output differs from the fixed-size run")
	}
}

// TestServerCrashRacingResizeRespawnsOnce pins satellite invariant #1: a
// crash transition whose epoch has already been superseded is a no-op. The
// resize and the crash race for the transition lock; whichever wins heals
// the world and the loser must not respawn it again.
func TestServerCrashRacingResizeRespawnsOnce(t *testing.T) {
	s := newTestServer(t, LocalMesh(testRanks), 0)
	stale := s.Epoch()
	if _, err := s.Resize(6); err != nil {
		t.Fatal(err)
	}
	// The crash observed the old epoch dying; the world has moved on.
	if err := s.transition(transOpts{from: stale, target: testRanks, crash: true, suspect: 2}); err != nil {
		t.Fatal(err)
	}
	if s.Respawns() != 0 {
		t.Fatalf("stale crash transition respawned the healed mesh (%d respawns)", s.Respawns())
	}
	if s.Size() != 6 {
		t.Fatalf("stale crash transition resized the world to %d", s.Size())
	}
}

// TestServerCheckpointRebalanceAcrossResize drives the storage half of
// elasticity end-to-end: a checkpointed job's state survives a resize via
// repartitioning, and the restored run on the new world size reproduces the
// original output — even though a fresh compute at the new size would count
// a differently-split corpus.
func TestServerCheckpointRebalanceAcrossResize(t *testing.T) {
	s := newTestServer(t, LocalMesh(testRanks), 0)
	spec := testSpec(80)
	spec.Checkpoint = "wc-elastic"

	seed := runOne(t, s, spec)
	if seed.Size != testRanks {
		t.Fatalf("seed job ran at size %d", seed.Size)
	}

	view, err := s.Resize(6)
	if err != nil {
		t.Fatal(err)
	}
	_, hist := s.Members()
	sawRebalance := false
	for _, ev := range hist {
		if ev.Kind == membership.EvRebalance && ev.Epoch == view.Epoch {
			sawRebalance = true
		}
	}
	if !sawRebalance {
		t.Fatalf("resize did not record a rebalance for epoch %d: %+v", view.Epoch, hist)
	}

	restored := runOne(t, s, spec)
	if restored.Size != 6 {
		t.Fatalf("restored job ran at size %d, want 6", restored.Size)
	}
	if !bytes.Equal([]byte(restored.Output), []byte(seed.Output)) {
		t.Fatal("restored run after repartitioning is not byte-identical to the seed run")
	}
	// Sanity: the checkpoint really carried the old corpus — a fresh compute
	// at the new size counts different bytes.
	if bytes.Equal([]byte(restored.Output), referenceAt(t, spec, 6)) {
		t.Fatal("restored output equals a fresh size-6 run; the checkpoint was not restored")
	}
}

// TestServerCheckpointNeedsInProcessMesh pins the submit-time rejection:
// checkpointed jobs need every rank in the server's process (the simulated
// PFS is not shared with worker processes).
func TestServerCheckpointNeedsInProcessMesh(t *testing.T) {
	s := newTestServer(t, tcpMesh(testRanks), 0)
	spec := testSpec(90)
	spec.Checkpoint = "nope"
	if _, _, err := s.Submit(spec); err == nil {
		t.Fatal("checkpointed job accepted on a mesh with remote ranks")
	}
}

// TestServerJoinRejectedOnFactoryMesh pins the join-time rejection for
// meshes that rebuild from a factory and fill every seat themselves.
func TestServerJoinRejectedOnFactoryMesh(t *testing.T) {
	s := newTestServer(t, LocalMesh(testRanks), 0)
	ln := serveOnLoopback(t, s)
	cl := Dial(ln)
	token, err := cl.JoinToken()
	if err != nil {
		t.Fatal(err)
	}
	if token == "" {
		t.Fatal("empty join token")
	}
	var ev Event
	conn, dec, err := cl.request(Request{Op: "join", Token: token, Addr: "test"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := dec.Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev.Event != EvError {
		t.Fatalf("join on a factory mesh answered %q, want an error", ev.Event)
	}
}

// serveOnLoopback starts Serve on a fresh loopback listener and returns its
// address; shutdown (via newTestServer's cleanup) closes it.
func serveOnLoopback(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	return ln.Addr().String()
}
