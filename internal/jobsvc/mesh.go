package jobsvc

import (
	"fmt"
	"os"
	"os/exec"
	"sort"
	"sync"
	"time"

	"mimir/internal/membership"
	"mimir/internal/transport"
)

// Mesh is one incarnation of the standing rank mesh: the rank-0 side's
// transport plus whatever teardown releases the incarnation's resources
// (reaping worker processes, joining worker goroutines). Close must be safe
// to call on a mesh that already died.
//
// Resize and Alive are the elastic extensions, both optional. Resize
// transitions the manager behind this mesh to the next incarnation without
// restarting the surviving workers; when nil the server closes the old mesh
// and calls the factory's Build for the new one (in-process meshes, where
// "restarting" a worker costs nothing). Alive reports whether the process
// serving a member is still running — the liveness probe transitions use to
// turn crashes into implicit leaves; nil means the server falls back to the
// suspect rank reported by the failing job.
type Mesh struct {
	Transport transport.Transport
	Close     func()
	Resize    func(spec ResizeSpec) (Mesh, error)
	Alive     func(member membership.MemberID) bool
}

// WorkerCred identifies a worker seat to the process filling it: the member
// ID the coordinator assigned and the member token it authenticates its
// rejoin requests with.
type WorkerCred struct {
	Member membership.MemberID
	Token  string
}

// MeshSpec describes the incarnation Build must produce.
type MeshSpec struct {
	Size  int
	Epoch uint64
	// Workers carries each worker rank's credential (rank 0 is the server
	// itself). In-process factories may ignore it.
	Workers map[int]WorkerCred
}

// Seat is a survivor's place in the next incarnation.
type Seat struct {
	Rank   int
	Member membership.MemberID
}

// ResizeSpec describes one mesh transition for Mesh.Resize.
type ResizeSpec struct {
	Size  int
	Epoch uint64
	// Survivors maps old rank -> next seat for workers that carry over.
	Survivors map[int]Seat
	// Retire maps old rank -> member for workers whose seat is gone.
	Retire map[int]membership.MemberID
	// Fresh maps new rank -> credential for seats the manager must fill by
	// forking new worker processes.
	Fresh map[int]WorkerCred
	// Graceful means the old mesh is healthy: survivors and retirees can be
	// told their fate over the old control channel. When false the old mesh
	// is dead and every survivor finds the new incarnation by rejoining
	// through the admin socket.
	Graceful bool
	// Notify, when non-nil, is called with the new incarnation's bootstrap
	// address as soon as its listener is up — before any directive is sent
	// or worker forked — so the server can publish attachments for workers
	// that arrive via the admin socket.
	Notify func(addr string)
}

// MeshFactory builds mesh incarnations. Size is the bootstrap world size;
// WorkerKind is the membership kind of the workers the factory provides
// (membership.KindLocal, KindSpawned, ...), which tells the coordinator what
// to label fresh seats.
type MeshFactory interface {
	Size() int
	WorkerKind() string
	Build(spec MeshSpec) (Mesh, error)
}

// funcFactory adapts a build function to MeshFactory.
type funcFactory struct {
	size  int
	kind  string
	build func(MeshSpec) (Mesh, error)
}

func (f funcFactory) Size() int                      { return f.size }
func (f funcFactory) WorkerKind() string             { return f.kind }
func (f funcFactory) Build(s MeshSpec) (Mesh, error) { return f.build(s) }

// NewMeshFactory wraps a build function as a MeshFactory (test harnesses
// that host worker ranks in-process but off the Local transport).
func NewMeshFactory(size int, kind string, build func(MeshSpec) (Mesh, error)) MeshFactory {
	return funcFactory{size: size, kind: kind, build: build}
}

// LocalMesh returns a MeshFactory hosting all ranks in this process on the
// in-process transport. There are no worker loops: the server's own
// execJob runs every rank, exactly as driver jobs do on in-process worlds.
// This is the fast path for tests and for a single-node daemon without
// process isolation. Resizes rebuild the world — in-process ranks are free.
func LocalMesh(size int) MeshFactory {
	return funcFactory{size: size, kind: membership.KindLocal, build: func(spec MeshSpec) (Mesh, error) {
		n := spec.Size
		if n == 0 {
			n = size
		}
		if n < 1 {
			return Mesh{}, fmt.Errorf("jobsvc: invalid mesh size %d", n)
		}
		tr := transport.NewLocal(n)
		return Mesh{Transport: tr, Close: func() {
			tr.Abort(fmt.Errorf("%w: jobsvc: mesh closed", transport.ErrAborted))
			tr.Close()
		}}, nil
	}}
}

// SpawnMesh returns the elastic process-backed MeshFactory: this process is
// rank 0 of a TCP mesh and worker seats are filled by forked copies of this
// binary (which must detect the MIMIR_TCP_* environment and run
// RunWorkerLoop). admin is the server's admin address, forwarded to every
// forked worker so it can rejoin after a crash-triggered transition; ""
// disables rejoin (workers die with their incarnation).
//
// The factory's meshes implement Resize — surviving worker processes carry
// over between incarnations via remesh directives (graceful) or admin
// rejoin (after a fault) — and Alive, backed by process liveness.
func SpawnMesh(size int, admin string, opts transport.SpawnOptions) MeshFactory {
	m := &elasticManager{
		size:  size,
		admin: admin,
		opts:  opts,
		procs: make(map[membership.MemberID]*elasticProc),
	}
	return funcFactory{size: size, kind: membership.KindSpawned, build: m.build}
}

// elasticManager owns the worker processes of a spawned mesh across every
// incarnation. Processes are keyed by member ID, never by rank: ranks are
// epoch-scoped names and a failed transition attempt reshuffles them, but a
// process serves one member for its whole life.
type elasticManager struct {
	size  int
	admin string
	opts  transport.SpawnOptions

	mu    sync.Mutex
	procs map[membership.MemberID]*elasticProc
}

type elasticProc struct {
	cmd  *exec.Cmd
	done chan struct{}
}

func (p *elasticProc) alive() bool {
	select {
	case <-p.done:
		return false
	default:
		return true
	}
}

func (m *elasticManager) tcpConfig(size int, epoch uint64) transport.TCPConfig {
	cfg := m.opts.Options.TCPConfig("127.0.0.1:0", 0, size)
	cfg.WrapConn = m.opts.WrapConn
	cfg.Epoch = epoch
	return cfg
}

// fork launches one worker process for a seat. The child joins the
// bootstrap via the MIMIR_TCP_* environment and authenticates future admin
// rejoins with its member credential.
func (m *elasticManager) fork(rank, size int, epoch uint64, addr string, cred WorkerCred) error {
	if cred.Member == 0 {
		return fmt.Errorf("jobsvc: fresh rank %d has no member credential", rank)
	}
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	cmd := exec.Command(exe, os.Args[1:]...)
	cmd.Env = append(os.Environ(),
		transport.EnvJoin+"="+addr,
		fmt.Sprintf("%s=%d", transport.EnvRank, rank),
		fmt.Sprintf("%s=%d", transport.EnvSize, size),
		fmt.Sprintf("%s=%d", transport.EnvEpoch, epoch),
	)
	cmd.Env = append(cmd.Env, m.opts.Options.Env()...)
	if m.admin != "" {
		cmd.Env = append(cmd.Env,
			EnvAdmin+"="+m.admin,
			fmt.Sprintf("%s=%d", EnvMember, cred.Member),
			EnvMemberToken+"="+cred.Token,
		)
	}
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("jobsvc: forking worker for rank %d: %w", rank, err)
	}
	p := &elasticProc{cmd: cmd, done: make(chan struct{})}
	go func() {
		cmd.Wait()
		close(p.done)
	}()
	m.mu.Lock()
	m.procs[cred.Member] = p
	m.mu.Unlock()
	return nil
}

func (m *elasticManager) build(spec MeshSpec) (Mesh, error) {
	b, err := transport.ListenTCP(m.tcpConfig(spec.Size, spec.Epoch))
	if err != nil {
		return Mesh{}, err
	}
	for rank := 1; rank < spec.Size; rank++ {
		if err := m.fork(rank, spec.Size, spec.Epoch, b.Addr(), spec.Workers[rank]); err != nil {
			m.reapAll(0)
			return Mesh{}, err
		}
	}
	t, err := b.Accept()
	if err != nil {
		m.reapAll(2 * time.Second)
		return Mesh{}, err
	}
	return m.mesh(t), nil
}

func (m *elasticManager) mesh(t *transport.TCP) Mesh {
	return Mesh{
		Transport: t,
		Close: func() {
			t.Close()
			m.reapAll(15 * time.Second)
		},
		Resize: func(spec ResizeSpec) (Mesh, error) { return m.resize(t, spec) },
		Alive:  m.alive,
	}
}

func (m *elasticManager) alive(id membership.MemberID) bool {
	m.mu.Lock()
	p, ok := m.procs[id]
	m.mu.Unlock()
	return ok && p.alive()
}

// resize stands up the next incarnation's bootstrap, redirects or retires
// the old incarnation's workers, forks processes for fresh seats, and
// completes the bootstrap. On failure the stranded survivors find their way
// back through the admin socket (their NewTCP attempt dies with the failed
// bootstrap), so a later attempt with a fresh epoch can still reuse them.
func (m *elasticManager) resize(old *transport.TCP, spec ResizeSpec) (Mesh, error) {
	b, err := transport.ListenTCP(m.tcpConfig(spec.Size, spec.Epoch))
	if err != nil {
		return Mesh{}, err
	}
	if spec.Notify != nil {
		spec.Notify(b.Addr())
	}
	if spec.Graceful {
		// Directives go out over the old mesh's control channel in rank
		// order. Failures are tolerated: a worker that missed its directive
		// sees the old mesh die and rejoins through the admin socket, where
		// Notify already published its attachment.
		ep := old.Endpoint(0)
		ranks := make([]int, 0, len(spec.Survivors)+len(spec.Retire))
		for r := range spec.Survivors {
			ranks = append(ranks, r)
		}
		for r := range spec.Retire {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			var msg ctrlMsg
			if seat, ok := spec.Survivors[r]; ok {
				msg = ctrlMsg{Op: opRemesh, Remesh: &Remesh{
					Addr: b.Addr(), Rank: seat.Rank, Size: spec.Size, Epoch: spec.Epoch}}
			} else {
				msg = ctrlMsg{Op: opRetire}
			}
			data, err := ctrlJSON(msg)
			if err != nil {
				old.Close()
				b.Close()
				return Mesh{}, err
			}
			ep.Send(r, ctrlTag, data, 0)
		}
	}
	// The old incarnation ends here either way; survivors are mid-flight.
	old.Close()
	for rank, cred := range spec.Fresh {
		if err := m.fork(rank, spec.Size, spec.Epoch, b.Addr(), cred); err != nil {
			b.Close()
			return Mesh{}, err
		}
	}
	t, err := b.Accept()
	if err != nil {
		return Mesh{}, err
	}
	// The incarnation is up: retired members exit on their own (reap them in
	// the background) and processes for members no longer seated anywhere
	// can be forgotten.
	keep := make(map[membership.MemberID]bool)
	for _, seat := range spec.Survivors {
		keep[seat.Member] = true
	}
	for _, cred := range spec.Fresh {
		keep[cred.Member] = true
	}
	m.mu.Lock()
	for id, p := range m.procs {
		if !keep[id] {
			delete(m.procs, id)
			go reapProc(p, 15*time.Second)
		}
	}
	m.mu.Unlock()
	return m.mesh(t), nil
}

func (m *elasticManager) reapAll(grace time.Duration) {
	m.mu.Lock()
	procs := make([]*elasticProc, 0, len(m.procs))
	for id, p := range m.procs {
		procs = append(procs, p)
		delete(m.procs, id)
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range procs {
		wg.Add(1)
		go func(p *elasticProc) {
			defer wg.Done()
			reapProc(p, grace)
		}(p)
	}
	wg.Wait()
}

func reapProc(p *elasticProc, grace time.Duration) {
	select {
	case <-p.done:
		return
	case <-time.After(grace):
	}
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
	<-p.done
}
