// Package jobsvc is the long-lived, multi-tenant job service over a standing
// rank mesh — the "mimird" control plane. Where every other entry point in
// this repository builds a world, runs exactly one job, and tears the world
// down, jobsvc keeps the rank mesh (the full TCP link mesh and its worker
// processes, or an in-process Local world) up across jobs: submitters hand
// job specs to a JSON-over-TCP front door on the process hosting rank 0,
// jobs queue behind a memory-admission gate, and admitted jobs run
// concurrently by multiplexing the one socket mesh through per-job transport
// channels (transport.Mux, wire v4). This is the paper's service model for
// large systems: the expensive resource — an established N^2 connection mesh
// and warmed-up processes — is paid for once and shared by many jobs.
//
// The moving parts:
//
//   - Server runs on the process hosting rank 0: admin socket, FIFO queue,
//     admission against a node memory arena, per-job dispatch and result
//     streaming, and mesh respawn after a fatal fault.
//   - RunWorker runs on every other rank: a control loop on channel 0 that
//     starts each announced job on its own channel, concurrently.
//   - Client is the thin submitter used by cmd/mimirctl and tests.
//
// Failure semantics: a job that fails by itself (out of its memory floor, a
// scripted crash confined to its channel) poisons only its channel — other
// running jobs and the mesh are untouched. A fault that kills the mesh (a
// worker process dying) fails every job running at that moment with a clean
// error, and the server then rebuilds the mesh from its factory; queued jobs
// wait out the respawn and run on the new mesh.
package jobsvc

import (
	"bytes"
	"encoding/json"
	"fmt"

	"mimir/internal/core"
	"mimir/internal/driver"
	"mimir/internal/kvbuf"
	"mimir/internal/membership"
	"mimir/internal/metrics"
	"mimir/internal/mpi"
	"mimir/internal/partition"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
	"mimir/internal/transport"
	"mimir/internal/workloads"
)

// Spec describes one submitted job — any driver.RunJob kind over its
// deterministic synthetic corpus — plus the job's memory floor for
// admission.
type Spec struct {
	// Job selects the kind: "" or "wordcount" (default), "terasort",
	// "pagerank", "kmeans", "bfs" (see driver.JobKinds).
	Job string `json:"job,omitempty"`
	// Bytes is the total corpus size across all ranks (default 1 MiB;
	// wordcount only).
	Bytes int64 `json:"bytes,omitempty"`
	// Dist is the corpus distribution: "uniform" (default) or "wikipedia".
	Dist string `json:"dist,omitempty"`
	// Seed is the corpus seed; two jobs with equal (Bytes, Dist, Seed) on
	// equal-size meshes produce byte-identical output.
	Seed uint64 `json:"seed,omitempty"`
	// Engine options (see driver.WordCountConfig).
	Hint    bool `json:"hint,omitempty"`
	PR      bool `json:"pr,omitempty"`
	CPS     bool `json:"cps,omitempty"`
	Workers int  `json:"workers,omitempty"`
	// MemBytes is the job's memory floor: the server admits the job only
	// once it can reserve this many bytes in the node arena, and each rank's
	// engine arena is capped at MemBytes divided by the world size — the job
	// cannot eat into memory promised to other jobs. 0 reserves nothing and
	// runs unlimited.
	MemBytes int64 `json:"mem_bytes,omitempty"`
	// Crash is a failure-injection hook for tests: the named rank (>= 1;
	// rank 0 hosts the server) dies when the job starts — a daemon worker
	// process exits without ceremony, an in-process rank aborts the mesh,
	// which is what its process death would have done. 0 means no crash.
	Crash int `json:"crash,omitempty"`
	// CrashRound moves the scripted crash to the top of the named round of
	// a multi-round job (pagerank, kmeans, bfs): rank Crash dies between
	// rounds CrashRound-1 and CrashRound, mid-iteration. Requires Crash.
	CrashRound int `json:"crash_round,omitempty"`
	// Checkpoint, when non-empty, names a post-shuffle checkpoint in the
	// server's file system: the first job with the name writes it, later
	// jobs with the same name restore from it (skipping input, map, and
	// aggregate), and elastic resizes repartition it so restore works at
	// the new world size. Only fully in-process meshes can run checkpointed
	// jobs — worker processes have no access to the server's simulated FS.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Zipf, when set, swaps the corpus for the parameterized zipf generator
	// at this skew exponent (s >= 0; Dist is then ignored). Contention
	// diverts that fraction of word draws onto the single hottest key.
	Zipf       *float64 `json:"zipf,omitempty"`
	Contention float64  `json:"contention,omitempty"`
	// Partitioner selects the key→rank strategy: "" or "hash" (FNV-1a,
	// the default) or "sample" (map-side sampling + weighted ranges; the
	// sample all-gather rides the job's own mux channel).
	Partitioner string `json:"partitioner,omitempty"`
	// MRC job parameters (see driver.JobConfig): terasort rows, graph
	// scale/edge factor, k-means geometry, and the iteration cap.
	Rows       int64 `json:"rows,omitempty"`
	Scale      int   `json:"scale,omitempty"`
	EdgeFactor int   `json:"edge_factor,omitempty"`
	Points     int64 `json:"points,omitempty"`
	K          int   `json:"k,omitempty"`
	Dims       int   `json:"dims,omitempty"`
	Rounds     int   `json:"rounds,omitempty"`
}

// multiRound reports whether the spec's job kind iterates (and so supports
// CrashRound and per-round checkpoints).
func (s Spec) multiRound() bool {
	switch s.Job {
	case driver.JobPageRank, driver.JobKMeans, driver.JobBFS:
		return true
	}
	return false
}

// wordcount reports whether the spec runs the original wordcount path.
func (s Spec) wordcount() bool {
	return s.Job == "" || s.Job == driver.JobWordCount
}

// normalize fills the defaults a zero field means.
func (s *Spec) normalize() {
	if s.Bytes <= 0 {
		s.Bytes = 1 << 20
	}
	if s.Dist == "" {
		s.Dist = "uniform"
	}
}

// validate rejects specs that could never run on a size-rank mesh whose node
// arena holds memCap bytes.
func (s Spec) validate(size int, memCap int64) error {
	if s.Job != "" {
		known := false
		for _, k := range driver.JobKinds() {
			known = known || k == s.Job
		}
		if !known {
			return fmt.Errorf("jobsvc: unknown job kind %q (want one of %v)", s.Job, driver.JobKinds())
		}
	}
	if _, err := s.dist(); err != nil {
		return err
	}
	if s.MemBytes < 0 {
		return fmt.Errorf("jobsvc: negative mem_bytes %d", s.MemBytes)
	}
	if memCap > 0 && s.MemBytes > memCap {
		return fmt.Errorf("jobsvc: mem_bytes %d exceeds the node arena capacity %d; the job would queue forever", s.MemBytes, memCap)
	}
	if s.Crash != 0 && (s.Crash < 1 || s.Crash >= size) {
		return fmt.Errorf("jobsvc: crash rank %d out of range [1, %d)", s.Crash, size)
	}
	if s.CrashRound != 0 {
		if s.Crash == 0 {
			return fmt.Errorf("jobsvc: crash_round %d without a crash rank", s.CrashRound)
		}
		if s.CrashRound < 0 {
			return fmt.Errorf("jobsvc: negative crash_round %d", s.CrashRound)
		}
		if !s.multiRound() {
			return fmt.Errorf("jobsvc: crash_round needs an iterative job, not %q", s.Job)
		}
	}
	if s.Checkpoint != "" && !s.wordcount() {
		// The service's elastic resize repartitions the single checkpoint
		// name it tracked at job end; multi-round jobs write one checkpoint
		// per round, which that path cannot follow. Round checkpoints are
		// exercised at the driver level instead.
		return fmt.Errorf("jobsvc: checkpoint is wordcount-only; %q jobs manage per-round checkpoints outside the service", s.Job)
	}
	if s.Zipf != nil && *s.Zipf < 0 {
		return fmt.Errorf("jobsvc: negative zipf skew %v", *s.Zipf)
	}
	if s.Contention < 0 || s.Contention > 1 {
		return fmt.Errorf("jobsvc: contention %v out of [0, 1]", s.Contention)
	}
	if _, err := partition.ByName(s.Partitioner); err != nil {
		return err
	}
	return nil
}

func (s Spec) dist() (workloads.Distribution, error) {
	switch s.Dist {
	case "uniform":
		return workloads.Uniform, nil
	case "wikipedia":
		return workloads.Wikipedia, nil
	}
	return 0, fmt.Errorf("jobsvc: unknown dist %q (want uniform or wikipedia)", s.Dist)
}

// ckptHint returns the KV-hint encoding the spec's checkpoint files use —
// what a resize must decode them with to repartition.
func (s Spec) ckptHint() kvbuf.Hint {
	if s.Hint {
		return workloads.WCHint()
	}
	return kvbuf.DefaultHint()
}

// config maps the spec onto the job driver for a size-rank world.
func (s Spec) config(size int) (driver.WordCountConfig, error) {
	dist, err := s.dist()
	if err != nil {
		return driver.WordCountConfig{}, err
	}
	cfg := driver.WordCountConfig{
		Dist:        dist,
		TotalBytes:  s.Bytes,
		Seed:        s.Seed,
		Hint:        s.Hint,
		PR:          s.PR,
		CPS:         s.CPS,
		Workers:     s.Workers,
		MemBytes:    s.MemBytes / int64(size),
		Partitioner: s.Partitioner,
	}
	if s.Zipf != nil {
		cfg.UseZipf = true
		cfg.ZipfSkew = *s.Zipf
		cfg.Contention = s.Contention
	}
	return cfg, nil
}

// jobConfig maps a non-wordcount spec onto the generic job driver.
func (s Spec) jobConfig(size int) driver.JobConfig {
	return driver.JobConfig{
		Kind:        s.Job,
		Seed:        s.Seed,
		Hint:        s.Hint,
		PR:          s.PR,
		Workers:     s.Workers,
		MemBytes:    s.MemBytes / int64(size),
		Partitioner: s.Partitioner,
		Rows:        s.Rows,
		Scale:       s.Scale,
		EdgeFactor:  s.EdgeFactor,
		Points:      s.Points,
		K:           s.K,
		Dims:        s.Dims,
		MaxRounds:   s.Rounds,
	}
}

// Job states as reported in events and status listings.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateError   = "error"
)

// Event names on the admin protocol.
const (
	EvQueued  = "queued"
	EvRunning = "running"
	EvDone    = "done"
	EvError   = "error"
	EvStatus  = "status"
	EvOK      = "ok"
	// Elastic-membership events.
	EvResized = "resized" // a resize transition committed
	EvMembers = "members" // membership view + history reply
	EvToken   = "token"   // a minted join token
	EvJoined  = "joined"  // a join request got a seat (carries the remesh)
	EvRemesh  = "remesh"  // a rejoin request's attachment to the live epoch
	EvRetired = "retired" // the member no longer holds a seat: exit
)

// Request is one admin-socket request: a single JSON object, answered by a
// stream of Events (submit) or exactly one Event (everything else). The ops:
// "submit", "status", "shutdown", plus the elastic-membership family —
// "resize" (Size), "members", "join-token", "join" (Token, Addr), "rejoin"
// (Member, Token), and "leave" (Member).
type Request struct {
	Op     string              `json:"op"`
	Spec   *Spec               `json:"spec,omitempty"`
	Size   int                 `json:"size,omitempty"`
	Member membership.MemberID `json:"member,omitempty"`
	Token  string              `json:"token,omitempty"`
	Addr   string              `json:"addr,omitempty"`
}

// Event is one line of an admin-socket reply. A submit streams
// queued → running → done|error for its job; done carries the gathered
// output, the merged per-rank metrics distribution, and the epoch/size of
// the mesh incarnation the job ran on (output is byte-identical per size).
type Event struct {
	Event   string          `json:"event"`
	Job     uint32          `json:"job,omitempty"`
	Error   string          `json:"error,omitempty"`
	Output  string          `json:"output,omitempty"`
	Metrics json.RawMessage `json:"metrics,omitempty"`
	Status  *Status         `json:"status,omitempty"`
	// Membership fields.
	Epoch   uint64              `json:"epoch,omitempty"`
	Size    int                 `json:"size,omitempty"`
	Member  membership.MemberID `json:"member,omitempty"`
	Token   string              `json:"token,omitempty"`
	Remesh  *Remesh             `json:"remesh,omitempty"`
	View    *membership.View    `json:"view,omitempty"`
	History []membership.Event  `json:"history,omitempty"`
}

// Status is the daemon-wide view returned by the status op.
type Status struct {
	// Size is the mesh's rank count.
	Size int `json:"size"`
	// Epoch is the committed membership epoch.
	Epoch uint64 `json:"epoch,omitempty"`
	// Respawns counts mesh rebuilds after fatal faults; a healthy service
	// reports 0 however many jobs it has run. Elastic resizes are not
	// respawns — they advance the epoch without a fault.
	Respawns int `json:"respawns"`
	// MemUsed / MemCapacity describe the admission arena (reserved job
	// floors, not live engine pages). Capacity 0 means unlimited.
	MemUsed     int64 `json:"mem_used"`
	MemCapacity int64 `json:"mem_capacity"`
	// Jobs lists every job the server has seen, in submission order.
	Jobs []JobStatus `json:"jobs"`
}

// JobStatus is one job's line in a Status listing.
type JobStatus struct {
	Job   uint32 `json:"job"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// Control messages travel rank 0 → worker on channel 0 of the mesh, tagged
// ctrlTag. Channel 0 carries nothing else while the service runs: every job
// gets its own channel, so control can never be confused with job traffic.
const ctrlTag = 1

const (
	opStart    = "start"
	opShutdown = "shutdown"
	// opRemesh directs a worker to finish its running jobs, drop this mesh
	// incarnation, and join the next one at the carried seat (graceful
	// resize). opRetire directs it to finish and exit: its seat is gone.
	opRemesh = "remesh"
	opRetire = "retire"
)

type ctrlMsg struct {
	Op     string  `json:"op"`
	Job    uint32  `json:"job,omitempty"`
	Spec   *Spec   `json:"spec,omitempty"`
	Remesh *Remesh `json:"remesh,omitempty"`
}

func ctrlJSON(c ctrlMsg) ([]byte, error) { return json.Marshal(c) }

// Remesh is a worker's attachment to the next mesh incarnation: where to
// dial, which seat to take, and the epoch the handshake must carry. It
// travels either as an opRemesh control directive (graceful resize) or as
// the reply to an admin rejoin/join request (crash recovery, external
// joiners).
type Remesh struct {
	Addr  string `json:"addr"`
	Rank  int    `json:"rank"`
	Size  int    `json:"size"`
	Epoch uint64 `json:"epoch"`
}

// execJob runs one job on its own channel of the standing mesh. Every
// process hosting ranks of the mesh calls it with the same (id, spec) — the
// server for rank 0 (or all ranks on an in-process mesh), RunWorker for each
// worker rank. The returned output and merged metrics are non-nil only on
// the process hosting rank 0. exit, when non-nil, implements the Spec.Crash
// hook by terminating the process; without it a crash is simulated by
// aborting the mesh, which is exactly what the process death would do.
// fs is the server's checkpoint file system (nil on worker processes;
// Spec.Checkpoint is only admitted on fully in-process meshes).
func execJob(tr transport.Transport, id uint32, spec Spec, exit func(code int), fs *pfs.FS) ([]byte, *metrics.Summary, error) {
	if spec.Crash > 0 && spec.CrashRound == 0 {
		for _, r := range tr.LocalRanks() {
			if r == spec.Crash {
				if exit != nil {
					exit(3)
				}
				err := fmt.Errorf("%w: jobsvc: rank %d crashed (scripted)", transport.ErrAborted, spec.Crash)
				tr.Abort(err)
				return nil, nil, err
			}
		}
	}
	mux, ok := tr.(transport.Mux)
	if !ok {
		return nil, nil, fmt.Errorf("jobsvc: transport %T cannot multiplex jobs", tr)
	}
	ch, err := mux.Open(id)
	if err != nil {
		return nil, nil, err
	}
	defer ch.Close()
	// Simulated (in-process) meshes need a network cost model or the clocks
	// jump to +Inf on the first charged byte; wall-clock transports ignore it.
	world := mpi.NewWorld(mpi.Config{
		Transport: ch,
		Net:       simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9},
	})
	sum := metrics.NewSummary()
	var out []byte
	if spec.wordcount() {
		cfg, err := spec.config(world.Size())
		if err != nil {
			return nil, nil, err
		}
		if spec.Checkpoint != "" && fs != nil {
			cfg.Checkpoint = &core.Checkpoint{FS: fs, Name: spec.Checkpoint}
		}
		out, err = driver.WordCount(world, cfg, sum)
		if err != nil {
			return nil, nil, err
		}
	} else {
		cfg := spec.jobConfig(world.Size())
		if spec.CrashRound > 0 {
			// The mid-iteration crash: rank Crash reaches the top of round
			// CrashRound and dies there — after the earlier rounds' exchanges,
			// before this one's. Everything the hook does is what the process
			// death would have done to the mesh.
			cfg.OnRound = func(rank, round int) error {
				if rank != spec.Crash || round != spec.CrashRound {
					return nil
				}
				if exit != nil {
					exit(3)
				}
				err := fmt.Errorf("%w: jobsvc: rank %d crashed at round %d (scripted)",
					transport.ErrAborted, spec.Crash, spec.CrashRound)
				tr.Abort(err)
				return err
			}
		}
		var err error
		out, err = driver.RunJob(world, cfg, sum)
		if err != nil {
			return nil, nil, err
		}
	}
	merged, err := gatherMetrics(world, sum)
	if err != nil {
		return nil, nil, err
	}
	return out, merged, nil
}

// gatherMetrics folds every rank's summary into one distribution at rank 0.
// When the world lives in one process the per-rank samples already share a
// summary; across processes each rank contributes its serialized summary
// through a Gatherv on the job's channel — the metrics ride the same
// exactly-once transport the job data did.
func gatherMetrics(world *mpi.World, sum *metrics.Summary) (*metrics.Summary, error) {
	if len(world.LocalRanks()) == world.Size() {
		return sum, nil
	}
	var merged *metrics.Summary
	err := world.Run(func(c *mpi.Comm) error {
		var buf bytes.Buffer
		if err := sum.WriteJSON(&buf); err != nil {
			return err
		}
		parts, err := c.Gatherv(buf.Bytes(), 0)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		merged = metrics.NewSummary()
		for _, p := range parts {
			if err := merged.MergeJSON(bytes.NewReader(p)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return merged, nil
}

// meshError reports the transport's abort cause, nil while healthy or when
// the transport cannot say (no ErrReporter).
func meshError(tr transport.Transport) error {
	if er, ok := tr.(transport.ErrReporter); ok {
		return er.Err()
	}
	return nil
}
