package simtime

import (
	"math"
	"testing"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(1.5, Compute)
	c.Advance(0.5, Comm)
	c.Advance(2.0, IO)
	if got := c.Now(); got != 4.0 {
		t.Errorf("Now() = %v, want 4.0", got)
	}
	if got := c.Spent(Compute); got != 1.5 {
		t.Errorf("Spent(Compute) = %v, want 1.5", got)
	}
	if got := c.Spent(Comm); got != 0.5 {
		t.Errorf("Spent(Comm) = %v, want 0.5", got)
	}
	if got := c.Spent(IO); got != 2.0 {
		t.Errorf("Spent(IO) = %v, want 2.0", got)
	}
}

func TestClockAdvanceNegativeIgnored(t *testing.T) {
	c := NewClock()
	c.Advance(-1, Compute)
	c.Advance(0, Comm)
	if c.Now() != 0 {
		t.Errorf("Now() = %v, want 0 after non-positive advances", c.Now())
	}
}

func TestClockSyncTo(t *testing.T) {
	c := NewClock()
	c.Advance(1, Compute)
	c.SyncTo(3)
	if c.Now() != 3 {
		t.Errorf("Now() = %v, want 3", c.Now())
	}
	if c.Spent(Comm) != 2 {
		t.Errorf("Spent(Comm) = %v, want 2 (barrier wait)", c.Spent(Comm))
	}
	// Syncing backward must be a no-op.
	c.SyncTo(1)
	if c.Now() != 3 {
		t.Errorf("Now() = %v after backward sync, want 3", c.Now())
	}
}

func TestFinishOverlapComputeCoversComm(t *testing.T) {
	// Post at t=1, background completion at t=3, then 5s of compute: the
	// communication is fully hidden, so the clock stays at the compute
	// frontier and the whole 2s window is saved vs. the serial schedule.
	c := NewClock()
	c.Advance(1, Compute)
	start, completeAt := c.Now(), c.Now()+2
	c.Advance(5, Compute)
	saved := c.FinishOverlap(start, completeAt)
	if c.Now() != 6 {
		t.Errorf("Now() = %v, want 6 (compute frontier)", c.Now())
	}
	if saved != 2 {
		t.Errorf("saved = %v, want 2 (full comm window hidden)", saved)
	}
	if c.Spent(Comm) != 0 {
		t.Errorf("Spent(Comm) = %v, want 0 (nothing waited)", c.Spent(Comm))
	}
}

func TestFinishOverlapCommCoversCompute(t *testing.T) {
	// Post at t=0, completion at t=10, only 3s of compute: the clock waits
	// out the rest of the window as Comm and the 3s of compute are saved.
	c := NewClock()
	start, completeAt := c.Now(), c.Now()+10
	c.Advance(3, Compute)
	saved := c.FinishOverlap(start, completeAt)
	if c.Now() != 10 {
		t.Errorf("Now() = %v, want 10 (comm completion)", c.Now())
	}
	if saved != 3 {
		t.Errorf("saved = %v, want 3 (compute hidden inside the window)", saved)
	}
	if c.Spent(Comm) != 7 {
		t.Errorf("Spent(Comm) = %v, want 7 (residual wait)", c.Spent(Comm))
	}
}

func TestFinishOverlapNoCompute(t *testing.T) {
	// With no compute in the window, FinishOverlap degenerates to a
	// blocking wait: clock at completeAt, nothing saved.
	c := NewClock()
	c.Advance(2, Compute)
	saved := c.FinishOverlap(c.Now(), c.Now()+4)
	if c.Now() != 6 {
		t.Errorf("Now() = %v, want 6", c.Now())
	}
	if saved != 0 {
		t.Errorf("saved = %v, want 0 (nothing overlapped)", saved)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(5, IO)
	c.Reset()
	if c.Now() != 0 || c.Spent(IO) != 0 {
		t.Errorf("after Reset: Now=%v Spent(IO)=%v, want zeros", c.Now(), c.Spent(IO))
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Compute: "compute", Comm: "comm", IO: "io", Kind(42): "Kind(42)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestNetworkModelPointToPoint(t *testing.T) {
	m := NetworkModel{Alpha: 1e-6, Beta: 1e9}
	got := m.PointToPoint(1000)
	want := 1e-6 + 1000.0/1e9
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("PointToPoint = %v, want %v", got, want)
	}
}

func TestNetworkModelBarrier(t *testing.T) {
	m := NetworkModel{Alpha: 2e-6, Beta: 1e9}
	if got := m.Barrier(1); got != 0 {
		t.Errorf("Barrier(1) = %v, want 0", got)
	}
	if got := m.Barrier(8); math.Abs(got-3*2e-6) > 1e-15 {
		t.Errorf("Barrier(8) = %v, want %v", got, 3*2e-6)
	}
	// Non-power-of-two rounds the tree depth up.
	if got := m.Barrier(9); math.Abs(got-4*2e-6) > 1e-15 {
		t.Errorf("Barrier(9) = %v, want %v", got, 4*2e-6)
	}
}

func TestNetworkModelAlltoallv(t *testing.T) {
	m := NetworkModel{Alpha: 1e-6, Beta: 1e8}
	if got := m.Alltoallv(1, 100, 100); got != 0 {
		t.Errorf("Alltoallv(p=1) = %v, want 0 (self exchange is free)", got)
	}
	got := m.Alltoallv(4, 1000, 3000)
	want := 3*1e-6 + 4000.0/1e8
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Alltoallv = %v, want %v", got, want)
	}
}

func TestNetworkModelReductionMonotonicInRanks(t *testing.T) {
	m := NetworkModel{Alpha: 1e-6, Beta: 1e9}
	prev := -1.0
	for _, p := range []int{1, 2, 4, 16, 256} {
		c := m.Reduction(p, 64)
		if c < prev {
			t.Errorf("Reduction cost decreased at p=%d: %v < %v", p, c, prev)
		}
		prev = c
	}
}
