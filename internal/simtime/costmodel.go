package simtime

import "math"

// NetworkModel is the classic alpha-beta (latency-bandwidth) cost model used
// to charge simulated time for MPI operations. It stands in for the FDR
// InfiniBand fabric on Comet and the 5D torus on Mira.
type NetworkModel struct {
	// Alpha is the per-message latency in seconds.
	Alpha float64
	// Beta is the link bandwidth in bytes per second.
	Beta float64
}

// PointToPoint returns the cost of moving n bytes between two ranks.
func (m NetworkModel) PointToPoint(n int) float64 {
	return m.Alpha + float64(n)/m.Beta
}

// Barrier returns the cost of a dissemination barrier across p ranks.
func (m NetworkModel) Barrier(p int) float64 {
	return m.Alpha * ceilLog2(p)
}

// Reduction returns the cost of a log-tree reduction of n bytes across p
// ranks (used for Allreduce, Reduce, Bcast, and the gather family).
func (m NetworkModel) Reduction(p, n int) float64 {
	steps := ceilLog2(p)
	return steps * (m.Alpha + float64(n)/m.Beta)
}

// Alltoallv returns the per-rank cost of a pairwise-exchange Alltoallv in
// which this rank sends sendBytes in total and receives recvBytes in total.
// Each rank exchanges with p-1 peers, paying latency per peer and bandwidth
// on its own injected plus delivered volume.
func (m NetworkModel) Alltoallv(p, sendBytes, recvBytes int) float64 {
	if p <= 1 {
		return 0
	}
	return m.Alpha*float64(p-1) + float64(sendBytes+recvBytes)/m.Beta
}

func ceilLog2(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}
