// Package simtime provides deterministic simulated time for the Mimir
// reproduction. Real supercomputer runs in the paper report wall-clock
// seconds on Comet and Mira; this reproduction replays the same workloads
// on an in-process MPI runtime and charges simulated costs (compute,
// network, I/O) to per-rank clocks instead. Collectives synchronize the
// clocks of all participants to the maximum, which is what makes load
// imbalance and barrier waiting visible in the weak-scaling figures.
package simtime

import (
	"fmt"
	"time"
)

// Kind classifies where simulated time is spent. The breakdown is reported
// by the experiment harness next to total execution time.
type Kind int

const (
	// Compute is time spent in map/convert/reduce callbacks and data movement
	// within a rank's own memory.
	Compute Kind = iota
	// Comm is time spent in MPI communication, including barrier waits.
	Comm
	// IO is time spent reading or writing the simulated parallel file system.
	IO
	numKinds
)

// String returns the conventional short name of the kind.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Comm:
		return "comm"
	case IO:
		return "io"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Clock tracks elapsed seconds for a single MPI rank. A Clock is not safe
// for concurrent use; each rank owns exactly one.
//
// A clock runs in one of two modes. A simulated clock (NewClock) only moves
// when costs are charged with Advance or SyncTo — the in-process runtime's
// deterministic time. A wall clock (NewWallClock) reads real elapsed time:
// simulated charges are ignored (real time passes by itself), and blocking
// runtime operations record their measured duration with ObserveSpan so the
// comm/IO breakdown still exists. The multi-process TCP transport runs on
// wall clocks, which is what feeds real time into the existing metrics.
type Clock struct {
	now       float64
	spent     [numKinds]float64
	wallStart time.Time // zero for simulated clocks
}

// NewClock returns a simulated clock at time zero.
func NewClock() *Clock { return &Clock{} }

// NewWallClock returns a wall clock whose Now is the real time elapsed
// since this call.
func NewWallClock() *Clock { return &Clock{wallStart: time.Now()} }

// IsWall reports whether this is a wall clock.
func (c *Clock) IsWall() bool { return !c.wallStart.IsZero() }

// Now returns the current time in seconds: simulated elapsed time, or real
// elapsed time for a wall clock.
func (c *Clock) Now() float64 {
	if c.IsWall() {
		return time.Since(c.wallStart).Seconds()
	}
	return c.now
}

// Advance moves a simulated clock forward by d seconds, attributing the
// interval to the given kind. Negative durations are ignored, and so are
// simulated charges on a wall clock (real time passes by itself).
func (c *Clock) Advance(d float64, kind Kind) {
	if d <= 0 || c.IsWall() {
		return
	}
	c.now += d
	c.spent[kind] += d
}

// SyncTo jumps a simulated clock forward to time t if t is in the future,
// attributing the waiting interval to Comm (barrier wait). It never moves
// the clock backward and is a no-op on a wall clock, where blocking in the
// transport already took real time.
func (c *Clock) SyncTo(t float64) {
	if c.IsWall() {
		return
	}
	if t > c.now {
		c.spent[Comm] += t - c.now
		c.now = t
	}
}

// ObserveSpan attributes d real seconds to kind on a wall clock. Simulated
// clocks ignore it (Advance is their accounting path).
func (c *Clock) ObserveSpan(d float64, kind Kind) {
	if !c.IsWall() || d <= 0 {
		return
	}
	c.spent[kind] += d
}

// FinishOverlap completes a compute/communication overlap window: a
// background operation was posted at time start (the clock's Now at the
// post), the clock has since advanced by local computation, and the
// operation completes at completeAt in the background. The clock is moved
// to max(Now, completeAt) — the overlapped window costs max(compute, comm)
// instead of their sum — with any residual wait attributed to Comm.
//
// The return value is the simulated seconds saved relative to the serial
// schedule, in which the operation would have blocked at start for
// completeAt-start seconds before the same computation ran: the saving is
// the portion of the communication window that computation covered.
func (c *Clock) FinishOverlap(start, completeAt float64) (saved float64) {
	if c.IsWall() {
		// Real communication cannot be replayed against a serial schedule;
		// the wall clock already contains whatever overlap happened.
		return 0
	}
	serial := completeAt + (c.now - start)
	c.SyncTo(completeAt)
	if serial > c.now {
		return serial - c.now
	}
	return 0
}

// Spent returns the accumulated seconds attributed to kind. On a wall clock
// Comm and IO are the observed blocking spans and Compute is the remainder
// of the elapsed time (the rank's own work between runtime calls).
func (c *Clock) Spent(kind Kind) float64 {
	if c.IsWall() && kind == Compute {
		rest := c.Now() - c.spent[Comm] - c.spent[IO]
		if rest < 0 {
			return 0
		}
		return rest
	}
	return c.spent[kind]
}

// Reset returns the clock to time zero (for a wall clock: to the present)
// and clears the breakdown.
func (c *Clock) Reset() {
	if c.IsWall() {
		*c = Clock{wallStart: time.Now()}
		return
	}
	*c = Clock{}
}
