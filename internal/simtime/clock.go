// Package simtime provides deterministic simulated time for the Mimir
// reproduction. Real supercomputer runs in the paper report wall-clock
// seconds on Comet and Mira; this reproduction replays the same workloads
// on an in-process MPI runtime and charges simulated costs (compute,
// network, I/O) to per-rank clocks instead. Collectives synchronize the
// clocks of all participants to the maximum, which is what makes load
// imbalance and barrier waiting visible in the weak-scaling figures.
package simtime

import "fmt"

// Kind classifies where simulated time is spent. The breakdown is reported
// by the experiment harness next to total execution time.
type Kind int

const (
	// Compute is time spent in map/convert/reduce callbacks and data movement
	// within a rank's own memory.
	Compute Kind = iota
	// Comm is time spent in MPI communication, including barrier waits.
	Comm
	// IO is time spent reading or writing the simulated parallel file system.
	IO
	numKinds
)

// String returns the conventional short name of the kind.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Comm:
		return "comm"
	case IO:
		return "io"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Clock tracks simulated elapsed seconds for a single MPI rank. A Clock is
// not safe for concurrent use; each rank owns exactly one.
type Clock struct {
	now   float64
	spent [numKinds]float64
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by d seconds, attributing the interval to
// the given kind. Negative durations are ignored.
func (c *Clock) Advance(d float64, kind Kind) {
	if d <= 0 {
		return
	}
	c.now += d
	c.spent[kind] += d
}

// SyncTo jumps the clock forward to time t if t is in the future,
// attributing the waiting interval to Comm (barrier wait). It never moves
// the clock backward.
func (c *Clock) SyncTo(t float64) {
	if t > c.now {
		c.spent[Comm] += t - c.now
		c.now = t
	}
}

// FinishOverlap completes a compute/communication overlap window: a
// background operation was posted at time start (the clock's Now at the
// post), the clock has since advanced by local computation, and the
// operation completes at completeAt in the background. The clock is moved
// to max(Now, completeAt) — the overlapped window costs max(compute, comm)
// instead of their sum — with any residual wait attributed to Comm.
//
// The return value is the simulated seconds saved relative to the serial
// schedule, in which the operation would have blocked at start for
// completeAt-start seconds before the same computation ran: the saving is
// the portion of the communication window that computation covered.
func (c *Clock) FinishOverlap(start, completeAt float64) (saved float64) {
	serial := completeAt + (c.now - start)
	c.SyncTo(completeAt)
	if serial > c.now {
		return serial - c.now
	}
	return 0
}

// Spent returns the accumulated seconds attributed to kind.
func (c *Clock) Spent(kind Kind) float64 { return c.spent[kind] }

// Reset returns the clock to time zero and clears the breakdown.
func (c *Clock) Reset() { *c = Clock{} }
