package expt

import (
	"errors"
	"math"
	"testing"

	"mimir/internal/core"
	"mimir/internal/mem"
	"mimir/internal/platform"
)

// skipUnderRace skips the minutes-long out-of-core scenarios under the race
// detector (~10x slower, past the default package timeout). The spill
// Group's concurrency is race-tested where it is cheap: internal/spill's
// unit tests and internal/workloads' TestSpillEquivalence.
func skipUnderRace(t *testing.T) {
	if raceEnabled {
		t.Skip("out-of-core scenario takes minutes under -race")
	}
}

// miniMira is Mira with an eighth of the node: same costs, page sizes, and
// file systems, but 2 cores and "2 GB" of memory, so the out-of-core
// acceptance scenario (a dataset at 2x node memory) runs in seconds rather
// than minutes. The ratios that matter — dataset/node-memory,
// page/node-memory, and memory per core — are what the full-scale figure
// uses.
func miniMira() *platform.Platform {
	p := platform.Mira()
	p.Name = "Mira (reduced)"
	p.CoresPerNode = 2
	p.NodeMemory = 2 * platform.MiB
	return p
}

// TestOutOfCorePastTheMemoryWall is the subsystem's acceptance scenario at
// the experiment level: WordCount on Wikipedia-skewed text at 2x node
// memory fails with ErrNoMemory under the paper's Error policy, and the
// identical spec completes under SpillWhenNeeded — with real spill traffic,
// I/O time on the simulated clock, and the node arena still within its
// capacity. (Output equality between the policies is asserted exactly in
// internal/core's spill tests; here the engines run under the platform
// harness.)
func TestOutOfCorePastTheMemoryWall(t *testing.T) {
	skipUnderRace(t)
	plat := miniMira()
	spec := Spec{Plat: plat, Nodes: 1, Engine: Mimir, Bench: WCWikipedia,
		SizeBytes: PaperSize("4G"), Seed: Seed}

	fail := Run(spec)
	if !fail.Failed() || !errors.Is(fail.Err, mem.ErrNoMemory) {
		t.Fatalf("Error policy at 2x node memory: err=%v, want ErrNoMemory", fail.Err)
	}

	spec.OutOfCore = core.SpillWhenNeeded
	r := Run(spec)
	if r.Failed() {
		t.Fatalf("SpillWhenNeeded at 2x node memory: %v", r.Err)
	}
	if r.SpilledBytes == 0 {
		t.Fatalf("completed 2x node memory without spilling (peak/proc %d)", r.PeakPerProc)
	}
	if r.SpillIOSec <= 0 {
		t.Errorf("spill traffic of %d bytes charged no I/O time", r.SpilledBytes)
	}
	if peak := r.PeakPerProc * int64(plat.CoresPerNode); peak > plat.NodeMemory {
		t.Errorf("node peak %d exceeds node memory %d", peak, plat.NodeMemory)
	}
	if math.IsNaN(r.Time) || r.Time <= 0 {
		t.Errorf("spill run reported no execution time: %v", r.Time)
	}
}

// TestOutOfCoreCliff: Mimir's spill path pays for its completion the same
// way MR-MPI's does — the identical job run out of core must be far slower
// than in memory, mirroring Figure 1's cliff. Both runs process the same 4G
// dataset on the same 2-core node; only the node memory differs (a "32 GB"
// node holds the whole working set, the "2 GB" node forces spilling).
func TestOutOfCoreCliff(t *testing.T) {
	skipUnderRace(t)
	roomy := miniMira()
	roomy.NodeMemory = 32 * platform.MiB
	inMem := Run(Spec{Plat: roomy, Nodes: 1, Engine: Mimir, Bench: WCWikipedia,
		SizeBytes: PaperSize("4G"), Seed: Seed})
	if !inMem.InMemory() {
		t.Fatalf("4G on a 32G node should run in memory: err=%v spilled=%d", inMem.Err, inMem.SpilledBytes)
	}
	spill := Run(Spec{Plat: miniMira(), Nodes: 1, Engine: Mimir, Bench: WCWikipedia,
		SizeBytes: PaperSize("4G"), Seed: Seed, OutOfCore: core.SpillWhenNeeded})
	if spill.Failed() {
		t.Fatalf("4G spill run failed: %v", spill.Err)
	}
	if spill.Time < 10*inMem.Time {
		t.Errorf("out-of-core time %.1f not >= 10x in-memory %.1f", spill.Time, inMem.Time)
	}
}
