package expt

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"mimir/internal/platform"
)

// Point is one measured cell of a figure: one series at one x value.
type Point struct {
	Series string
	X      string
	// Time in simulated seconds (NaN if the run failed).
	Time float64
	// PeakGB is the per-process peak memory in paper-scale GB.
	PeakGB float64
	// Note marks special outcomes: "OOM" (failed), "spill" (out of core —
	// the paper omits these points), or "".
	Note string
}

// OK reports whether the point is a valid in-memory measurement.
func (p Point) OK() bool { return p.Note == "" && !math.IsNaN(p.Time) }

// Figure is one reproduced table/figure.
type Figure struct {
	ID     string // "fig1" .. "fig14"
	Title  string
	XLabel string
	Points []Point
	// NoTime suppresses the execution-time section (for size-only figures
	// like Fig 7); MemLabel overrides the memory section's heading.
	NoTime   bool
	MemLabel string
}

// Add records one measured point, deriving Note from the result.
func (f *Figure) Add(series, x string, r Result) {
	pt := Point{Series: series, X: x, Time: r.Time, PeakGB: BytesToPaperGB(r.PeakPerProc)}
	switch {
	case r.Failed():
		pt.Note = "OOM"
		pt.Time = math.NaN()
	case r.SpilledBytes > 0:
		pt.Note = "spill"
	}
	f.Points = append(f.Points, pt)
}

// AddRaw records a point that is not a Run result (e.g. Fig 7's KV sizes).
func (f *Figure) AddRaw(p Point) { f.Points = append(f.Points, p) }

// Get returns the point for (series, x).
func (f *Figure) Get(series, x string) (Point, bool) {
	for _, p := range f.Points {
		if p.Series == series && p.X == x {
			return p, true
		}
	}
	return Point{}, false
}

// SeriesNames returns the distinct series in first-appearance order.
func (f *Figure) SeriesNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, p := range f.Points {
		if !seen[p.Series] {
			seen[p.Series] = true
			names = append(names, p.Series)
		}
	}
	return names
}

// XValues returns the distinct x values in first-appearance order.
func (f *Figure) XValues() []string {
	var xs []string
	seen := map[string]bool{}
	for _, p := range f.Points {
		if !seen[p.X] {
			seen[p.X] = true
			xs = append(xs, p.X)
		}
	}
	return xs
}

// Render prints the figure as two aligned tables (execution time and peak
// memory), one row per x value and one column per series — the same
// rows/series the paper plots.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", strings.ToUpper(f.ID), f.Title)
	series := f.SeriesNames()
	xs := f.XValues()

	cell := func(p Point, ok bool, mem bool) string {
		if !ok {
			return "-"
		}
		if p.Note == "OOM" {
			return "OOM"
		}
		if p.Note == "spill" && !mem {
			return fmt.Sprintf("(%s)", fmtSeconds(p.Time))
		}
		if mem {
			return fmt.Sprintf("%.2f", p.PeakGB)
		}
		return fmtSeconds(p.Time)
	}

	hasMem := false
	for _, p := range f.Points {
		if p.PeakGB > 0 {
			hasMem = true
			break
		}
	}
	memLabel := f.MemLabel
	if memLabel == "" {
		memLabel = "peak memory per process (GB)"
	}
	var sections []struct {
		name string
		mem  bool
	}
	if !f.NoTime {
		sections = append(sections, struct {
			name string
			mem  bool
		}{"execution time (s)", false})
	}
	if hasMem {
		sections = append(sections, struct {
			name string
			mem  bool
		}{memLabel, true})
	}
	for _, sec := range sections {
		fmt.Fprintf(w, "-- %s --\n", sec.name)
		fmt.Fprintf(w, "%-14s", f.XLabel)
		for _, s := range series {
			fmt.Fprintf(w, " %18s", s)
		}
		fmt.Fprintln(w)
		for _, x := range xs {
			fmt.Fprintf(w, "%-14s", x)
			for _, s := range series {
				p, ok := f.Get(s, x)
				fmt.Fprintf(w, " %18s", cell(p, ok, sec.mem))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

func fmtSeconds(t float64) string {
	switch {
	case math.IsNaN(t):
		return "fail"
	case t >= 100:
		return fmt.Sprintf("%.0f", t)
	case t >= 1:
		return fmt.Sprintf("%.1f", t)
	default:
		return fmt.Sprintf("%.3f", t)
	}
}

// BytesToPaperGB converts scaled bytes to paper-scale GB: scaled bytes are
// 1024x smaller, so 1 MiB scaled == 1 "GB" in paper terms.
func BytesToPaperGB(scaled int64) float64 {
	return float64(scaled) * platform.Scale / (1 << 30)
}

// SizeLabel renders a scaled byte count with its paper-scale name
// (e.g. 1 MiB scaled -> "1G").
func SizeLabel(scaled int64) string {
	paper := scaled * platform.Scale
	switch {
	case paper >= 1<<30 && paper%(1<<30) == 0:
		return fmt.Sprintf("%dG", paper>>30)
	case paper >= 1<<20 && paper%(1<<20) == 0:
		return fmt.Sprintf("%dM", paper>>20)
	default:
		return fmt.Sprintf("%dK", paper>>10)
	}
}

// PaperSize parses a paper-scale label like "256M" or "4G" into scaled
// bytes.
func PaperSize(label string) int64 {
	var n int64
	var unit string
	fmt.Sscanf(label, "%d%s", &n, &unit)
	var paper int64
	switch strings.ToUpper(unit) {
	case "G":
		paper = n << 30
	case "M":
		paper = n << 20
	case "K":
		paper = n << 10
	default:
		paper = n
	}
	return paper / platform.Scale
}

// Pow2Label formats 2^n as the paper writes it.
func Pow2Label(n int) string { return fmt.Sprintf("2^%d", n) }

// SortPoints orders points by series then x (stable rendering for tests).
func (f *Figure) SortPoints() {
	sort.SliceStable(f.Points, func(i, j int) bool {
		if f.Points[i].Series != f.Points[j].Series {
			return f.Points[i].Series < f.Points[j].Series
		}
		return f.Points[i].X < f.Points[j].X
	})
}
