package expt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMRCMatrixSmoke runs a small corner of the MRC matrix (pagerank and
// kmeans, full ladder, 4 ranks) and, when MIMIR_MRC_OUT is set, writes the
// per-cell JSON artifacts CI uploads.
func TestMRCMatrixSmoke(t *testing.T) {
	cells := MRCMatrix(MRCSpec{
		Jobs:  []Bench{PageRank, KMeans},
		Scale: 8, Points: 1 << 11, K: 5, Dims: 2,
	})
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6 (two jobs x three ladder rungs)", len(cells))
	}
	for _, c := range cells {
		if c.Err != "" {
			t.Errorf("cell %s failed: %s", c.Name(), c.Err)
			continue
		}
		if c.TimeSec <= 0 || c.PeakPerRankBytes <= 0 {
			t.Errorf("cell %s: time %v peak %v, want both positive", c.Name(), c.TimeSec, c.PeakPerRankBytes)
		}
		if c.Rounds < 2 {
			t.Errorf("cell %s ran %d rounds; MRC cells must iterate", c.Name(), c.Rounds)
		}
		if len(c.RoundPeakBytes) != c.Rounds {
			t.Errorf("cell %s: %d round peaks for %d rounds", c.Name(), len(c.RoundPeakBytes), c.Rounds)
		}
	}
	if dir := os.Getenv("MIMIR_MRC_OUT"); dir != "" {
		if err := WriteMRCCells(dir, cells); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d cell artifacts to %s", len(cells), dir)
	}
}

func TestMRCMatrixDeterministic(t *testing.T) {
	spec := MRCSpec{Jobs: []Bench{PageRank}, Scale: 8}
	a, b := MRCMatrix(spec), MRCMatrix(spec)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("matrix not deterministic:\n%s\n%s", aj, bj)
	}
}

func TestWriteMRCCellsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cells := []MRCCell{{Job: "pagerank", Variant: "hint;pr", Ranks: 4, Rounds: 2,
		TimeSec: 1.5, PeakPerRankBytes: 1 << 20, ShuffledBytes: 1 << 18,
		RoundPeakBytes: []int64{1 << 19, 1 << 20}}}
	if err := WriteMRCCells(dir, cells); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "mrc_pagerank_hint-pr_r4.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got MRCCell
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(cells[0])
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("round trip mismatch:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}
