package expt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/platform"
	"mimir/internal/workloads"
)

// MRCSpec describes the multi-round-computation ablation sweep: the cross
// product of MRC jobs (TeraSort / PageRank / k-means, optionally BFS), rank
// counts, and each job's optimization ladder, every cell one run on the
// Comet platform at one rank per node — so PeakPerRankBytes and the
// per-round peaks are exact arena high-water marks, not node averages.
type MRCSpec struct {
	Jobs  []Bench
	Ranks []int
	// Dataset sizes (0 = the committed defaults, scaled for CI).
	Rows    int64 // terasort rows
	Scale   int   // pagerank/bfs: log2 vertices
	Points  int64 // kmeans points
	K, Dims int
	// MaxRounds caps BFS (PageRank and k-means derive their own caps).
	MaxRounds int
	Seed      uint64
}

func (s MRCSpec) withDefaults() MRCSpec {
	if len(s.Jobs) == 0 {
		s.Jobs = []Bench{TeraSort, PageRank, KMeans}
	}
	if len(s.Ranks) == 0 {
		s.Ranks = []int{4}
	}
	if s.Rows == 0 {
		s.Rows = 1 << 13
	}
	if s.Scale == 0 {
		s.Scale = 9
	}
	if s.Points == 0 {
		s.Points = 1 << 12
	}
	if s.K == 0 {
		s.K = 8
	}
	if s.Dims == 0 {
		s.Dims = 3
	}
	if s.Seed == 0 {
		s.Seed = Seed
	}
	return s
}

// MRCCell is one measured cell of the matrix, shaped for per-cell JSON
// artifacts (CI uploads one file per cell; see WriteMRCCells).
type MRCCell struct {
	Job              string  `json:"job"`
	Variant          string  `json:"variant"`
	Ranks            int     `json:"ranks"`
	Rounds           int     `json:"rounds"`
	TimeSec          float64 `json:"time_sec"`
	PeakPerRankBytes int64   `json:"peak_per_rank_bytes"`
	ShuffledBytes    int64   `json:"shuffled_bytes"`
	SpilledBytes     int64   `json:"spilled_bytes"`
	// RoundPeakBytes[i] is the busiest rank's arena high-water mark by the
	// end of round i (sampled at the next round's barrier; the last entry is
	// the job's final peak). The arena peak is monotone, so the series shows
	// which round drives the job's memory footprint.
	RoundPeakBytes []int64 `json:"round_peak_bytes"`
	Err            string  `json:"err,omitempty"`
}

// Name is the cell's stable identifier (and its artifact file stem).
func (c MRCCell) Name() string {
	return fmt.Sprintf("mrc_%s_%s_r%d", c.Job, strings.ReplaceAll(c.Variant, ";", "-"), c.Ranks)
}

func mrcJobName(b Bench) string {
	switch b {
	case TeraSort:
		return "terasort"
	case PageRank:
		return "pagerank"
	case KMeans:
		return "kmeans"
	case BFS:
		return "bfs"
	}
	return fmt.Sprintf("bench%d", int(b))
}

type mrcVariant struct {
	name     string
	hint, pr bool
}

// mrcVariants is each job's optimization ladder. The map-only jobs stop at
// the KV-hint rung: sort rows and BFS candidate parents must survive as
// records, so partial reduction does not apply (paper IV-D).
func mrcVariants(b Bench) []mrcVariant {
	switch b {
	case TeraSort, BFS:
		return []mrcVariant{{"base", false, false}, {"hint", true, false}}
	}
	return []mrcVariant{{"base", false, false}, {"hint", true, false}, {"hint;pr", true, true}}
}

// MRCMatrix runs the full cross product and returns one cell per run, in
// deterministic sweep order (job outermost, ranks innermost).
func MRCMatrix(s MRCSpec) []MRCCell {
	s = s.withDefaults()
	var cells []MRCCell
	for _, job := range s.Jobs {
		for _, v := range mrcVariants(job) {
			for _, ranks := range s.Ranks {
				cells = append(cells, mrcRun(s, job, v, ranks))
			}
		}
	}
	return cells
}

// mrcRun measures one cell. Unlike the single-stage sweeps this does not go
// through Run: the round hook needs the per-rank arenas mid-job to sample
// the peak series at each round barrier.
func mrcRun(s MRCSpec, job Bench, v mrcVariant, ranks int) MRCCell {
	plat := platform.Comet()
	world := mpi.NewWorld(mpi.Config{Size: ranks, Net: plat.Net})
	arenas := make([]*mem.Arena, ranks)
	for i := range arenas {
		arenas[i] = mem.NewArena(plat.NodeMemory)
	}
	costs := plat.Costs()
	// tops[rank][i] is rank's arena peak at the top of round i; each rank
	// goroutine appends only to its own slice.
	tops := make([][]int64, ranks)
	cell := MRCCell{Job: mrcJobName(job), Variant: v.name, Ranks: ranks}
	var mu sync.Mutex
	err := world.Run(func(c *mpi.Comm) error {
		rank := c.Rank()
		arena := arenas[rank]
		me := workloads.NewMimirEngine(c, arena)
		me.PageSize = plat.PageSize
		me.CommBuf = plat.PageSize
		me.Costs = costs
		opts := workloads.StageOpts{}
		mr := workloads.MultiRound{OnRound: func(round int) error {
			tops[rank] = append(tops[rank], arena.Peak())
			return nil
		}}
		var stats workloads.StageStats
		var rounds int
		switch job {
		case TeraSort:
			cfg := workloads.TeraSortConfig{Rows: s.Rows, Seed: s.Seed}
			if v.hint {
				opts.Hint = workloads.TeraSortHint(cfg)
			}
			r, err := workloads.RunTeraSort(me, nil, cfg, opts, nil)
			if err != nil {
				return err
			}
			stats, rounds = r.Stats, r.Rounds
		case PageRank:
			cfg := workloads.PageRankConfig{Scale: s.Scale, Seed: s.Seed, MaxRounds: s.MaxRounds}
			if v.hint {
				opts.Hint = workloads.PageRankHint()
			}
			if v.pr {
				opts.PartialReduce = workloads.Int64VecAdd
			}
			r, err := workloads.RunPageRank(me, nil, cfg, opts, mr, nil)
			if err != nil {
				return err
			}
			stats, rounds = r.Stats, r.Rounds
		case KMeans:
			cfg := workloads.KMeansConfig{Points: s.Points, K: s.K, Dims: s.Dims, Seed: s.Seed}
			if v.hint {
				opts.Hint = workloads.KMeansHint(cfg)
			}
			if v.pr {
				opts.PartialReduce = workloads.Int64VecAdd
			}
			r, err := workloads.RunKMeans(me, nil, cfg, opts, mr)
			if err != nil {
				return err
			}
			stats, rounds = r.Stats, r.Rounds
		case BFS:
			cfg := workloads.BFSConfig{Scale: s.Scale, Seed: s.Seed}
			if v.hint {
				opts.Hint = workloads.BFSHint()
			}
			bmr := mr
			bmr.MaxRounds = s.MaxRounds
			r, err := workloads.RunBFS(me, nil, cfg, opts, bmr)
			if err != nil {
				return err
			}
			stats, rounds = r.Stats, r.Depth
		default:
			return fmt.Errorf("expt: %s is not an MRC job", job)
		}
		mu.Lock()
		cell.ShuffledBytes += stats.ShuffledBytes
		cell.SpilledBytes += stats.SpilledBytes
		if rounds > cell.Rounds {
			cell.Rounds = rounds // identical on every rank
		}
		mu.Unlock()
		return nil
	})
	cell.TimeSec = world.MaxTime()
	if err != nil {
		cell.Err = err.Error()
		cell.TimeSec = 0 // NaN is not valid JSON
		return cell
	}
	var peak int64
	for _, a := range arenas {
		if a.Peak() > peak {
			peak = a.Peak()
		}
	}
	cell.PeakPerRankBytes = peak
	// Fold the top-of-round samples into the end-of-round series: the end of
	// round i is the top of round i+1; the last round ends at the final peak.
	cell.RoundPeakBytes = make([]int64, cell.Rounds)
	for r := 0; r < cell.Rounds; r++ {
		var m int64
		for rank := range tops {
			v := arenas[rank].Peak()
			if r+1 < len(tops[rank]) {
				v = tops[rank][r+1]
			}
			if v > m {
				m = v
			}
		}
		cell.RoundPeakBytes[r] = m
	}
	return cell
}

// WriteMRCCells writes each cell as its own indented JSON file
// (<cell name>.json) under dir, creating it if needed.
func WriteMRCCells(dir string, cells []MRCCell) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, c := range cells {
		b, err := json.MarshalIndent(c, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(filepath.Join(dir, c.Name()+".json"), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// FigMRC runs the MRC ablation at 4 ranks and plots each job's optimization
// ladder: the KV-hint cuts every job's arena peak (fixed-width keys drop
// the per-record headers), and partial reduction collapses the iterative
// jobs' exchange traffic (contributions to the same vertex, coordinate sums
// to the same centroid) at the sender.
func FigMRC() []*Figure {
	f := &Figure{ID: "figmrc", Title: "Multi-round jobs on Comet, 4 ranks: optimization ablation",
		XLabel: "job"}
	cells := MRCMatrix(MRCSpec{})
	for _, c := range cells {
		r := Result{Time: c.TimeSec, PeakPerProc: c.PeakPerRankBytes,
			ShuffledBytes: c.ShuffledBytes, SpilledBytes: c.SpilledBytes, Rounds: c.Rounds}
		if c.Err != "" {
			r.Err = fmt.Errorf("%s", c.Err)
			r.Time = math.NaN()
		}
		f.Add(c.Variant, c.Job, r)
	}
	return []*Figure{f}
}
