package expt

import (
	"fmt"

	"mimir/internal/core"
	"mimir/internal/kvbuf"
	"mimir/internal/mrmpi"
	"mimir/internal/platform"
	"mimir/internal/workloads"
)

// Seed used by all experiments (datasets are deterministic).
const Seed = 42

// paperPow2 converts a paper-scale 2^n count to the scaled count (2^(n-10)).
func paperPow2(n int) int64 { return 1 << uint(n-10) }

// All maps figure ids to their generators, in paper order.
var All = []struct {
	ID   string
	Gen  func() []*Figure
	Note string
}{
	{"fig1", Fig1, "MR-MPI single-node WordCount cliff"},
	{"fig7", Fig7, "KV-hint size saving"},
	{"fig8", Fig8, "Comet single node: Mimir vs MR-MPI"},
	{"fig9", Fig9, "Mira single node: Mimir vs MR-MPI"},
	{"fig10", Fig10, "Weak scalability of WC"},
	{"fig11", Fig11, "KV compression on Comet"},
	{"fig12", Fig12, "KV compression on Mira"},
	{"fig13", Fig13, "Optimization ladder on Mira"},
	{"fig14", Fig14, "Weak scalability of the ladder on Mira"},
	{"figspill", FigSpill, "Out-of-core: Mimir spill vs MR-MPI modes"},
	{"figskew", FigSkew, "Skew matrix: hash vs sample partitioning"},
	{"figmrc", FigMRC, "MRC ablation: TeraSort / PageRank / k-means"},
}

// Fig1 reproduces Figure 1: single-node execution time of WordCount with
// MR-MPI on Comet, 1G to 64G. Beyond the in-memory limit the time collapses
// by orders of magnitude (the paper's "1000X degradation in performance").
func Fig1() []*Figure {
	f := &Figure{ID: "fig1", Title: "Single-node execution time of WordCount with MR-MPI on Comet", XLabel: "dataset size"}
	plat := platform.Comet()
	for _, label := range []string{"1G", "2G", "4G", "8G", "16G", "32G", "64G"} {
		r := Run(Spec{
			Plat: plat, Nodes: 1, Engine: MRMPI, MRMPIPage: plat.MaxPageSize,
			Bench: WCUniform, SizeBytes: PaperSize(label), Seed: Seed,
		})
		f.Add("MR-MPI (512M)", label, r)
	}
	return []*Figure{f}
}

// Fig7 reproduces Figure 7: total KV bytes of WordCount over the Wikipedia
// dataset with and without the KV-hint (value length fixed at 8 bytes, key a
// NUL-terminated string). The paper measures ~26% savings.
func Fig7() []*Figure {
	f := &Figure{ID: "fig7", Title: "KV size of WordCount with Wikipedia dataset", XLabel: "dataset size",
		NoTime: true, MemLabel: "KV size (GB)"}
	for _, label := range []string{"8G", "16G", "32G"} {
		def, hinted := kvSizes(PaperSize(label))
		f.AddRaw(Point{Series: "without KV-hint", X: label, PeakGB: BytesToPaperGB(def)})
		f.AddRaw(Point{Series: "with KV-hint", X: label, PeakGB: BytesToPaperGB(hinted)})
	}
	return []*Figure{f}
}

// kvSizes computes the encoded KV bytes of the WC (Wikipedia) map output
// under the default and hinted encodings.
func kvSizes(totalBytes int64) (def, hinted int64) {
	defHint := kvbuf.DefaultHint()
	wcHint := workloads.WCHint()
	val := make([]byte, 8)
	in := workloads.TextInput(nil, nil, workloads.Wikipedia, Seed, totalBytes, 0, 1)
	_ = in(func(rec core.Record) error {
		data := rec.Val
		start := -1
		for i := 0; i <= len(data); i++ {
			if i < len(data) && data[i] != ' ' {
				if start < 0 {
					start = i
				}
				continue
			}
			if start >= 0 {
				word := data[start:i]
				def += int64(defHint.EncodedSize(word, val))
				hinted += int64(wcHint.EncodedSize(word, val))
				start = -1
			}
		}
		return nil
	})
	return def, hinted
}

// comparison sweeps shared by Figures 8, 9, 11, 12, 13.
type sweep struct {
	bench  Bench
	labels []string          // row labels (paper scale)
	size   func(string) Spec // fills the size fields from a label
}

func wcSweep(bench Bench, labels []string) sweep {
	return sweep{bench: bench, labels: labels, size: func(label string) Spec {
		return Spec{Bench: bench, SizeBytes: PaperSize(label)}
	}}
}

func ocSweep(lo, hi int) sweep {
	var labels []string
	for n := lo; n <= hi; n++ {
		labels = append(labels, Pow2Label(n))
	}
	return sweep{bench: OC, labels: labels, size: func(label string) Spec {
		var n int
		fmt.Sscanf(label, "2^%d", &n)
		return Spec{Bench: OC, Points: paperPow2(n)}
	}}
}

func bfsSweep(lo, hi int) sweep {
	var labels []string
	for n := lo; n <= hi; n++ {
		labels = append(labels, Pow2Label(n))
	}
	return sweep{bench: BFS, labels: labels, size: func(label string) Spec {
		var n int
		fmt.Sscanf(label, "2^%d", &n)
		return Spec{Bench: BFS, Scale: n - 10}
	}}
}

// variant is one line of a comparison figure.
type variant struct {
	name string
	set  func(*Spec)
}

// runComparison produces one figure panel: each variant swept over the rows.
func runComparison(id, title, xlabel string, plat *platform.Platform, sw sweep, variants []variant) *Figure {
	f := &Figure{ID: id, Title: title, XLabel: xlabel}
	for _, label := range sw.labels {
		for _, v := range variants {
			spec := sw.size(label)
			spec.Plat = plat
			spec.Nodes = 1
			spec.Seed = Seed
			v.set(&spec)
			f.Add(v.name, label, Run(spec))
		}
	}
	return f
}

func mimirV() variant {
	return variant{"Mimir", func(s *Spec) { s.Engine = Mimir }}
}

func mrmpiV(name string, page int) variant {
	return variant{name, func(s *Spec) { s.Engine = MRMPI; s.MRMPIPage = page }}
}

// Fig8 reproduces Figure 8: peak memory usage and execution times of the
// three benchmarks on one Comet node, Mimir vs MR-MPI with 64 MB and 512 MB
// pages.
func Fig8() []*Figure {
	plat := platform.Comet()
	variants := []variant{
		mimirV(),
		mrmpiV("MR-MPI (64M)", plat.PageSize),
		mrmpiV("MR-MPI (512M)", plat.MaxPageSize),
	}
	return []*Figure{
		runComparison("fig8a", "WC (Uniform), one Comet node", "dataset size", plat,
			wcSweep(WCUniform, []string{"256M", "512M", "1G", "2G", "4G", "8G", "16G"}), variants),
		runComparison("fig8b", "WC (Wikipedia), one Comet node", "dataset size", plat,
			wcSweep(WCWikipedia, []string{"256M", "512M", "1G", "2G", "4G", "8G", "16G"}), variants),
		runComparison("fig8c", "OC, one Comet node", "number of points", plat,
			ocSweep(24, 30), variants),
		runComparison("fig8d", "BFS, one Comet node", "number of vertices", plat,
			bfsSweep(19, 26), variants),
	}
}

// Fig9 reproduces Figure 9: the same comparison on one Mira node (64 MB and
// 128 MB MR-MPI pages).
func Fig9() []*Figure {
	plat := platform.Mira()
	variants := []variant{
		mimirV(),
		mrmpiV("MR-MPI (64M)", plat.PageSize),
		mrmpiV("MR-MPI (128M)", plat.MaxPageSize),
	}
	wcLabels := []string{"64M", "128M", "256M", "512M", "1G", "2G"}
	return []*Figure{
		runComparison("fig9a", "WC (Uniform), one Mira node", "dataset size", plat,
			wcSweep(WCUniform, wcLabels), variants),
		runComparison("fig9b", "WC (Wikipedia), one Mira node", "dataset size", plat,
			wcSweep(WCWikipedia, wcLabels), variants),
		runComparison("fig9c", "OC, one Mira node", "number of points", plat,
			ocSweep(22, 27), variants),
		runComparison("fig9d", "BFS, one Mira node", "number of vertices", plat,
			bfsSweep(18, 22), variants),
	}
}

// weakScaling runs one weak-scaling panel: per-node size fixed, node count
// swept.
func weakScaling(id, title string, plat *platform.Platform, bench Bench, perNode Spec,
	nodes []int, ranksPerNode int, variants []variant) *Figure {
	f := &Figure{ID: id, Title: title, XLabel: "number of nodes"}
	for _, n := range nodes {
		for _, v := range variants {
			spec := perNode
			spec.Plat = plat
			spec.Bench = bench
			spec.Nodes = n
			spec.RanksPerNode = ranksPerNode
			spec.Seed = Seed
			// Scale the per-node quantity to the job total.
			spec.SizeBytes *= int64(n)
			spec.Points *= int64(n)
			if spec.Scale > 0 {
				spec.Scale += log2int(n)
			}
			v.set(&spec)
			f.Add(v.name, fmt.Sprint(n), Run(spec))
		}
	}
	return f
}

func log2int(n int) int {
	k := 0
	for 1<<uint(k+1) <= n {
		k++
	}
	return k
}

// Fig10 reproduces Figure 10: weak scalability of WordCount, 512 MB/node on
// Comet and 256 MB/node on Mira, 2..64 nodes.
func Fig10() []*Figure {
	comet := platform.Comet()
	mira := platform.Mira()
	nodes := []int{2, 4, 8, 16, 32, 64}
	cometV := []variant{mimirV(), mrmpiV("MR-MPI (64M)", comet.PageSize), mrmpiV("MR-MPI (512M)", comet.MaxPageSize)}
	miraV := []variant{mimirV(), mrmpiV("MR-MPI (64M)", mira.PageSize), mrmpiV("MR-MPI (128M)", mira.MaxPageSize)}
	// MR-MPI's spill threshold is per rank (page size vs per-rank KV bytes),
	// so the weak-scaling runs keep the platforms' true ranks-per-node: up
	// to 1,536 in-process ranks on "64 Comet nodes".
	return []*Figure{
		weakScaling("fig10a", "WC (Uniform, 512M/node, Comet)", comet, WCUniform,
			Spec{SizeBytes: PaperSize("512M")}, nodes, comet.CoresPerNode, cometV),
		weakScaling("fig10b", "WC (Wikipedia, 512M/node, Comet)", comet, WCWikipedia,
			Spec{SizeBytes: PaperSize("512M")}, nodes, comet.CoresPerNode, cometV),
		weakScaling("fig10c", "WC (Uniform, 256M/node, Mira)", mira, WCUniform,
			Spec{SizeBytes: PaperSize("256M")}, nodes, mira.CoresPerNode, miraV),
		weakScaling("fig10d", "WC (Wikipedia, 256M/node, Mira)", mira, WCWikipedia,
			Spec{SizeBytes: PaperSize("256M")}, nodes, mira.CoresPerNode, miraV),
	}
}

// Fig11 reproduces Figure 11: the KV compression optimization on one Comet
// node — Mimir with and without cps vs MR-MPI (512 MB pages) with and
// without cps, on larger sweeps than Figure 8.
func Fig11() []*Figure {
	plat := platform.Comet()
	variants := []variant{
		mimirV(),
		{"Mimir (cps)", func(s *Spec) { s.Engine = Mimir; s.CPS = true }},
		mrmpiV("MR-MPI", plat.MaxPageSize),
		{"MR-MPI (cps)", func(s *Spec) { s.Engine = MRMPI; s.MRMPIPage = plat.MaxPageSize; s.CPS = true }},
	}
	wcLabels := []string{"512M", "1G", "2G", "4G", "8G", "16G", "32G", "64G"}
	return []*Figure{
		runComparison("fig11a", "KV compression: WC (Uniform), one Comet node", "dataset size", plat,
			wcSweep(WCUniform, wcLabels), variants),
		runComparison("fig11b", "KV compression: WC (Wikipedia), one Comet node", "dataset size", plat,
			wcSweep(WCWikipedia, wcLabels), variants),
		runComparison("fig11c", "KV compression: OC, one Comet node", "number of points", plat,
			ocSweep(25, 32), variants),
		runComparison("fig11d", "KV compression: BFS, one Comet node", "number of vertices", plat,
			bfsSweep(20, 26), variants),
	}
}

// Fig12 reproduces Figure 12: KV compression on one Mira node. Per the
// paper, MR-MPI uses its largest feasible page: 128 MB for WC and 64 MB for
// OC and BFS.
func Fig12() []*Figure {
	plat := platform.Mira()
	varsFor := func(page int) []variant {
		return []variant{
			mimirV(),
			{"Mimir (cps)", func(s *Spec) { s.Engine = Mimir; s.CPS = true }},
			mrmpiV("MR-MPI", page),
			{"MR-MPI (cps)", func(s *Spec) { s.Engine = MRMPI; s.MRMPIPage = page; s.CPS = true }},
		}
	}
	wcLabels := []string{"256M", "512M", "1G", "2G", "4G", "8G"}
	return []*Figure{
		runComparison("fig12a", "KV compression: WC (Uniform), one Mira node", "dataset size", plat,
			wcSweep(WCUniform, wcLabels), varsFor(plat.MaxPageSize)),
		runComparison("fig12b", "KV compression: WC (Wikipedia), one Mira node", "dataset size", plat,
			wcSweep(WCWikipedia, wcLabels), varsFor(plat.MaxPageSize)),
		runComparison("fig12c", "KV compression: OC, one Mira node", "number of points", plat,
			ocSweep(24, 29), varsFor(plat.PageSize)),
		runComparison("fig12d", "KV compression: BFS, one Mira node", "number of vertices", plat,
			bfsSweep(18, 23), varsFor(plat.PageSize)),
	}
}

// ladder returns the paper's optimization ladder for Figure 13/14. BFS does
// not support partial reduction (map-only), matching the paper.
func ladder(bench Bench) []variant {
	if bench == BFS {
		return []variant{
			mimirV(),
			{"Mimir (hint)", func(s *Spec) { s.Engine = Mimir; s.Hint = true }},
			{"Mimir (hint;cps)", func(s *Spec) { s.Engine = Mimir; s.Hint = true; s.CPS = true }},
		}
	}
	return []variant{
		mimirV(),
		{"Mimir (hint)", func(s *Spec) { s.Engine = Mimir; s.Hint = true }},
		{"Mimir (hint;pr)", func(s *Spec) { s.Engine = Mimir; s.Hint = true; s.PR = true }},
		{"Mimir (hint;pr;cps)", func(s *Spec) { s.Engine = Mimir; s.Hint = true; s.PR = true; s.CPS = true }},
	}
}

// Fig13 reproduces Figure 13: the effect of stacking hint, pr, and cps on
// one Mira node.
func Fig13() []*Figure {
	plat := platform.Mira()
	wcLabels := []string{"256M", "512M", "1G", "2G", "4G", "8G"}
	return []*Figure{
		runComparison("fig13a", "Optimizations: WC (Uniform), one Mira node", "dataset size", plat,
			wcSweep(WCUniform, wcLabels), ladder(WCUniform)),
		runComparison("fig13b", "Optimizations: WC (Wikipedia), one Mira node", "dataset size", plat,
			wcSweep(WCWikipedia, wcLabels), ladder(WCWikipedia)),
		runComparison("fig13c", "Optimizations: OC, one Mira node", "number of points", plat,
			ocSweep(24, 29), ladder(OC)),
		runComparison("fig13d", "Optimizations: BFS, one Mira node", "number of vertices", plat,
			bfsSweep(18, 23), ladder(BFS)),
	}
}

// FigSpill extends the paper: WordCount ladders on one Mira node crossing
// its 16 GB memory, comparing Mimir's three out-of-core policies (the
// paper's fail-fast default plus the new spill subsystem) against MR-MPI's
// three out-of-core modes at its largest feasible page. Past the memory
// wall the error policies go OOM while the spill policies trade execution
// time for completion; Mimir's page-granular eviction keeps both its peak
// memory and its out-of-core traffic below MR-MPI's whole-page spills.
func FigSpill() []*Figure {
	plat := platform.Mira()
	variants := []variant{
		{"Mimir (error)", func(s *Spec) { s.Engine = Mimir }},
		{"Mimir (spill)", func(s *Spec) { s.Engine = Mimir; s.OutOfCore = core.SpillWhenNeeded }},
		{"Mimir (spill-always)", func(s *Spec) { s.Engine = Mimir; s.OutOfCore = core.SpillAlways }},
		{"MR-MPI (error)", func(s *Spec) {
			s.Engine = MRMPI
			s.MRMPIPage = plat.MaxPageSize
			s.MRMPIMode = mrmpi.ErrorIfExceeds
		}},
		mrmpiV("MR-MPI (spill)", plat.MaxPageSize), // spill-when-needed, the library default
		{"MR-MPI (spill-always)", func(s *Spec) {
			s.Engine = MRMPI
			s.MRMPIPage = plat.MaxPageSize
			s.MRMPIMode = mrmpi.SpillAlways
		}},
	}
	wcLabels := []string{"1G", "2G", "4G", "8G", "16G", "32G"}
	return []*Figure{
		runComparison("figspilla", "Out-of-core: WC (Uniform), one Mira node", "dataset size", plat,
			wcSweep(WCUniform, wcLabels), variants),
		runComparison("figspillb", "Out-of-core: WC (Wikipedia), one Mira node", "dataset size", plat,
			wcSweep(WCWikipedia, wcLabels), variants),
	}
}

// Fig14 reproduces Figure 14: weak scalability of the optimization ladder on
// Mira. The paper runs to 1,024 nodes; this in-process reproduction sweeps
// 2..128 nodes (the paper's WC (Wikipedia) panel also stops at 128), with 4
// ranks per node for tractability — node-level memory ratios, which decide
// where each ladder rung runs out of memory, are preserved.
func Fig14() []*Figure {
	plat := platform.Mira()
	nodes := []int{2, 4, 8, 16, 32, 64, 128}
	const rpn = 4
	return []*Figure{
		weakScaling("fig14a", "Ladder weak scaling: WC (Uniform, 2G/node, Mira)", plat, WCUniform,
			Spec{SizeBytes: PaperSize("2G")}, nodes, rpn, ladder(WCUniform)),
		weakScaling("fig14b", "Ladder weak scaling: WC (Wikipedia, 2G/node, Mira)", plat, WCWikipedia,
			Spec{SizeBytes: PaperSize("2G")}, nodes, rpn, ladder(WCWikipedia)),
		weakScaling("fig14c", "Ladder weak scaling: OC (2^27 points/node, Mira)", plat, OC,
			Spec{Points: paperPow2(27)}, nodes, rpn, ladder(OC)),
		weakScaling("fig14d", "Ladder weak scaling: BFS (2^22 vertices/node, Mira)", plat, BFS,
			Spec{Scale: 12}, nodes, rpn, ladder(BFS)),
	}
}
