package expt

import (
	"encoding/json"
	"io"
	"math"
)

// jsonPoint is the wire form of a Point; NaN times (failed runs) are
// encoded as null, which encoding/json cannot do for float64 directly.
type jsonPoint struct {
	Series string   `json:"series"`
	X      string   `json:"x"`
	Time   *float64 `json:"time_sec"`
	PeakGB *float64 `json:"peak_gb"`
	Note   string   `json:"note,omitempty"`
}

type jsonFigure struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	XLabel string      `json:"x_label"`
	Points []jsonPoint `json:"points"`
}

// WriteJSON emits the figure as one JSON document.
func (f *Figure) WriteJSON(w io.Writer) error {
	out := jsonFigure{ID: f.ID, Title: f.Title, XLabel: f.XLabel}
	for _, p := range f.Points {
		jp := jsonPoint{Series: p.Series, X: p.X, Note: p.Note}
		if !math.IsNaN(p.Time) {
			t := p.Time
			jp.Time = &t
		}
		if p.PeakGB > 0 {
			g := p.PeakGB
			jp.PeakGB = &g
		}
		out.Points = append(out.Points, jp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSONFigure parses a figure written by WriteJSON (used by downstream
// tooling and the round-trip tests).
func ReadJSONFigure(r io.Reader) (*Figure, error) {
	var in jsonFigure
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	f := &Figure{ID: in.ID, Title: in.Title, XLabel: in.XLabel}
	for _, jp := range in.Points {
		p := Point{Series: jp.Series, X: jp.X, Note: jp.Note, Time: math.NaN()}
		if jp.Time != nil {
			p.Time = *jp.Time
		}
		if jp.PeakGB != nil {
			p.PeakGB = *jp.PeakGB
		}
		f.Points = append(f.Points, p)
	}
	return f, nil
}
