package expt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mimir/internal/core"
)

// TestSkewMatrixSmoke runs a small 2x2 corner of the matrix (skew {0, 1.1}
// x partitioner {hash, sample}) and, when MIMIR_SKEW_OUT is set, writes the
// per-cell JSON artifacts CI uploads.
func TestSkewMatrixSmoke(t *testing.T) {
	cells := SkewMatrix(SkewSpec{
		Skews: []float64{0, 1.1}, Workers: []int{1}, Ranks: []int{4},
		Policies: []core.OutOfCore{core.Error}, Partitioners: []string{"hash", "sample"},
		SizeBytes: 64 << 10, Contention: 0.1, PR: true,
	})
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	for _, c := range cells {
		if c.Err != "" {
			t.Errorf("cell %s failed: %s", c.Name(), c.Err)
			continue
		}
		if c.TimeSec <= 0 || c.PeakPerRankBytes <= 0 {
			t.Errorf("cell %s: time %v peak %v, want both positive", c.Name(), c.TimeSec, c.PeakPerRankBytes)
		}
		if c.SpilledBytes != 0 {
			t.Errorf("cell %s spilled %d bytes under OutOfCore: Error", c.Name(), c.SpilledBytes)
		}
	}
	if dir := os.Getenv("MIMIR_SKEW_OUT"); dir != "" {
		if err := WriteSkewCells(dir, cells); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d cell artifacts to %s", len(cells), dir)
	}
}

func TestSkewMatrixDeterministic(t *testing.T) {
	spec := SkewSpec{Skews: []float64{1.1}, Ranks: []int{4},
		Partitioners: []string{"sample"}, SizeBytes: 64 << 10, Contention: 0.1, PR: true}
	a, b := SkewMatrix(spec), SkewMatrix(spec)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("matrix not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestWriteSkewCellsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cells := []SkewCell{{Skew: 1.1, Workers: 1, Ranks: 4, OutOfCore: "error",
		Partitioner: "sample", TimeSec: 2.5, PeakPerRankBytes: 1 << 20}}
	if err := WriteSkewCells(dir, cells); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, cells[0].Name()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var got SkewCell
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != cells[0] {
		t.Fatalf("round trip: got %+v want %+v", got, cells[0])
	}
}

// TestFigSkewShape is the golden-shape acceptance test: at zipf 1.1 on 4
// ranks the sample partitioner must beat hash on both simulated time and
// per-rank peak memory, while at zero skew the two stay comparable.
func TestFigSkewShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	figs := FigSkew()
	if len(figs) != 1 {
		t.Fatalf("got %d figures, want 1", len(figs))
	}
	f := figs[0]
	get := func(series, x string) Point {
		p, ok := f.Get(series, x)
		if !ok {
			t.Fatalf("missing point (%s, %s)", series, x)
		}
		if !p.OK() {
			t.Fatalf("point (%s, %s) not in-memory: note %q", series, x, p.Note)
		}
		return p
	}
	hash, sample := get("hash", "1.1"), get("sample", "1.1")
	if sample.Time >= hash.Time {
		t.Errorf("zipf 1.1: sample time %.3fs not below hash %.3fs", sample.Time, hash.Time)
	}
	if sample.PeakGB >= hash.PeakGB {
		t.Errorf("zipf 1.1: sample peak %.3fGB not below hash %.3fGB", sample.PeakGB, hash.PeakGB)
	}
	h0, s0 := get("hash", "0.0"), get("sample", "0.0")
	if s0.Time > 1.25*h0.Time {
		t.Errorf("zipf 0: sample time %.3fs more than 25%% over hash %.3fs", s0.Time, h0.Time)
	}
}
