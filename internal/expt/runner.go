// Package expt is the experiment harness that regenerates every figure of
// the paper's evaluation (Section IV). Each figure function returns a
// Figure whose rows mirror the paper's x-axis sweep and whose series mirror
// the paper's lines; cmd/mimir-bench prints them and bench_test.go exposes
// one testing.B benchmark per figure.
//
// Scaling: all sizes are 1024x smaller than the paper's (see
// internal/platform); row labels keep the paper-scale names, so the row
// labeled "1G" runs a 1 MiB dataset against a 128 MiB "128 GB" node.
package expt

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"mimir/internal/core"
	"mimir/internal/mem"
	"mimir/internal/metrics"
	"mimir/internal/mpi"
	"mimir/internal/mrmpi"
	"mimir/internal/partition"
	"mimir/internal/pfs"
	"mimir/internal/platform"
	"mimir/internal/spill"
	"mimir/internal/workloads"
)

// EngineKind selects the MapReduce engine.
type EngineKind int

// Engines under comparison.
const (
	Mimir EngineKind = iota
	MRMPI
)

// Bench selects one of the paper's benchmarks.
type Bench int

// The paper's three benchmarks (WordCount appears with two datasets), the
// parameterized zipf WordCount the skew matrix sweeps, and the MRC
// multi-round suite (TeraSort / PageRank / k-means).
const (
	WCUniform Bench = iota
	WCWikipedia
	OC
	BFS
	WCZipf
	TeraSort
	PageRank
	KMeans
)

// String names the benchmark as the paper does.
func (b Bench) String() string {
	switch b {
	case WCUniform:
		return "WC (Uniform)"
	case WCWikipedia:
		return "WC (Wikipedia)"
	case OC:
		return "OC"
	case BFS:
		return "BFS"
	case WCZipf:
		return "WC (Zipf)"
	case TeraSort:
		return "TeraSort"
	case PageRank:
		return "PageRank"
	case KMeans:
		return "k-means"
	}
	return fmt.Sprintf("Bench(%d)", int(b))
}

// Spec describes one experimental run (one point of one figure).
type Spec struct {
	Plat  *platform.Platform
	Nodes int
	// RanksPerNode overrides the platform's core count; the multi-node
	// weak-scaling figures use fewer ranks per node to keep the in-process
	// rank count tractable (node-level memory ratios are unaffected).
	RanksPerNode int
	Engine       EngineKind
	// MRMPIPage sets the MR-MPI page size (default: the platform page size).
	MRMPIPage int
	// MRMPIMode selects MR-MPI's out-of-core mode (zero value:
	// spill-when-needed, the library default).
	MRMPIMode mrmpi.Mode
	// OutOfCore selects Mimir's out-of-core policy (zero value: Error — the
	// paper's fail-on-ErrNoMemory behavior). The spill policies evict
	// container pages to the platform's spill file system.
	OutOfCore core.OutOfCore
	// Optimizations (Mimir honors all three; MR-MPI only CPS).
	Hint, PR, CPS bool
	// Workers sets each Mimir rank's intra-process worker pool. Unlike
	// core.Config, the zero value pins 1 (serial), NOT GOMAXPROCS: figures
	// must be machine-independent, so host core count may never leak into
	// a simulated result. Set explicitly to model hybrid MPI+threads runs.
	Workers int

	Bench Bench
	// WC: total dataset bytes (scaled). OC/k-means: total points.
	// BFS/PageRank: graph scale. TeraSort: total rows.
	SizeBytes int64
	Points    int64
	Scale     int
	Rows      int64
	Seed      uint64
	// Multi-round knobs: the iteration cap (0 = workload default) and
	// k-means geometry (0 = workload defaults).
	MaxRounds int
	K, Dims   int

	// WCZipf knobs: the zipf exponent, the contention mass diverted to the
	// hottest key, and the partitioner name ("", "hash", or "sample") —
	// the skew-matrix axes (Mimir only; MR-MPI has no pluggable partitioner).
	Skew        float64
	Contention  float64
	Partitioner string

	// PerRank optionally collects per-rank distribution samples (phase
	// times, shuffle and spill traffic, total rank time) for the ranks this
	// process hosts; render or serialize it with metrics.Summary.
	PerRank *metrics.Summary
}

// Result is the outcome of one run.
type Result struct {
	// Time is the simulated job execution time in seconds (max over ranks),
	// including reading the input from the parallel file system.
	Time float64
	// PeakPerProc is the peak memory per process in scaled bytes: the
	// busiest node's arena high-water mark divided by its ranks (how the
	// paper reports "peak memory usage").
	PeakPerProc int64
	// SpilledBytes counts out-of-core write traffic: MR-MPI page spills, or
	// Mimir container evictions under a Spec.OutOfCore spill policy (0 for
	// Mimir's default Error policy).
	SpilledBytes int64
	// ShuffledBytes sums exchange traffic over all ranks and stages.
	ShuffledBytes int64
	// Rounds is the multi-round benches' executed round count (stages for
	// the iterative jobs; 1-stage benches report their stage count).
	Rounds int
	// SpillIOSec sums, over all ranks, the simulated seconds spent on
	// Mimir's spill I/O (0 for MR-MPI, whose spill time is inside Time).
	SpillIOSec float64
	// OverlapSavedSec sums, over all ranks, the simulated seconds the
	// overlapped aggregate saved by hiding exchange rounds behind the map
	// (0 for MR-MPI and for SerialAggregate runs).
	OverlapSavedSec float64
	// Err is non-nil if the run failed (typically out of memory).
	Err error
}

// InMemory reports whether the run completed without touching the I/O
// subsystem — the paper's criterion for a valid performance point.
func (r Result) InMemory() bool { return r.Err == nil && r.SpilledBytes == 0 }

// Failed reports whether the run could not complete at all.
func (r Result) Failed() bool { return r.Err != nil }

// Run executes one spec on a fresh in-process world and gathers metrics.
func Run(spec Spec) Result {
	plat := spec.Plat
	rpn := spec.RanksPerNode
	if rpn <= 0 {
		rpn = plat.CoresPerNode
	}
	p := spec.Nodes * rpn
	return RunWorld(mpi.NewWorld(mpi.Config{Size: p, Net: plat.Net}), spec)
}

// RunWorld executes one spec on an existing world, which may be in-process
// or a multi-process TCP world (each process then contributes its local
// ranks and sees its local view of the result). The world size must equal
// Nodes x RanksPerNode.
func RunWorld(world *mpi.World, spec Spec) Result {
	plat := spec.Plat
	rpn := spec.RanksPerNode
	if rpn <= 0 {
		rpn = plat.CoresPerNode
	}
	if world.Size() != spec.Nodes*rpn {
		return Result{Err: fmt.Errorf("expt: world size %d does not match %d nodes x %d ranks",
			world.Size(), spec.Nodes, rpn)}
	}

	// One memory arena per node; the node's memory is shared by its ranks.
	// Per-process budget scales with ranks per node so that reducing the
	// rank count (for tractability) does not inflate per-node memory.
	nodeMem := plat.NodeMemory
	arenas := make([]*mem.Arena, spec.Nodes)
	groups := make([]*spill.Group, spec.Nodes)
	for i := range arenas {
		arenas[i] = mem.NewArena(nodeMem)
		// One eviction group per node: ranks sharing the node arena also
		// share memory pressure, so any of them may evict any cold page.
		groups[i] = spill.NewGroup()
	}
	inputFS := plat.InputFSFor(spec.Nodes)
	spillFS := plat.SpillFSFor(spec.Nodes)
	costs := plat.Costs()

	part, err := partition.ByName(spec.Partitioner)
	if err != nil {
		return Result{Err: err}
	}

	opts := workloads.StageOpts{}
	if spec.Hint {
		switch spec.Bench {
		case WCUniform, WCWikipedia, WCZipf:
			opts.Hint = workloads.WCHint()
		case OC:
			opts.Hint = workloads.OCHint()
		case BFS:
			opts.Hint = workloads.BFSHint()
		case TeraSort:
			opts.Hint = workloads.TeraSortHint(workloads.TeraSortConfig{})
		case PageRank:
			opts.Hint = workloads.PageRankHint()
		case KMeans:
			opts.Hint = workloads.KMeansHint(workloads.KMeansConfig{K: spec.K, Dims: spec.Dims})
		}
	}
	if spec.PR {
		// BFS and TeraSort are map-only: partial reduction does not apply
		// (paper IV-D; sort rows must survive as rows). PageRank and
		// k-means substitute their own combiner when the flag is on.
		switch spec.Bench {
		case BFS, TeraSort:
		case PageRank, KMeans:
			opts.PartialReduce = workloads.Int64VecAdd
		default:
			opts.PartialReduce = workloads.WordCountCombine
		}
	}
	if spec.CPS {
		switch spec.Bench {
		case BFS:
			opts.Combiner = workloads.BFSCombine
		case TeraSort:
			// rows are distinct; compression would merge duplicate keys
		case PageRank, KMeans:
			opts.Combiner = workloads.Int64VecAdd
		default:
			opts.Combiner = workloads.WordCountCombine
		}
	}

	var mu sync.Mutex
	var res Result
	err = world.Run(func(c *mpi.Comm) error {
		arena := arenas[c.Rank()/rpn]
		var eng workloads.Engine
		switch spec.Engine {
		case Mimir:
			me := workloads.NewMimirEngine(c, arena)
			me.PageSize = plat.PageSize
			me.CommBuf = plat.PageSize
			me.OutOfCore = spec.OutOfCore
			me.SpillFS = spillFS
			me.SpillGroup = groups[c.Rank()/rpn]
			me.Workers = spec.Workers
			if me.Workers <= 0 {
				me.Workers = 1 // machine-independent figures: never GOMAXPROCS
			}
			me.Partitioner = part
			me.Costs = costs
			eng = me
		case MRMPI:
			mre := workloads.NewMRMPIEngine(c, arena, spillFS)
			mre.PageSize = spec.MRMPIPage
			if mre.PageSize <= 0 {
				mre.PageSize = plat.PageSize
			}
			mre.Mode = spec.MRMPIMode
			mre.Costs = costs
			eng = mre
		}
		stats, rounds, err := runBench(eng, inputFS, spec, opts)
		if err != nil {
			return err
		}
		if spec.PerRank != nil {
			stats.Record(spec.PerRank)
			spec.PerRank.Add("rank-sec", c.Clock().Now())
		}
		mu.Lock()
		res.SpilledBytes += stats.SpilledBytes
		res.ShuffledBytes += stats.ShuffledBytes
		res.SpillIOSec += stats.SpillIOSec
		res.OverlapSavedSec += stats.OverlapSavedSec
		if rounds > res.Rounds {
			res.Rounds = rounds // identical on every rank for multi-round jobs
		}
		mu.Unlock()
		return nil
	})
	res.Time = world.MaxTime()
	if err != nil {
		res.Err = err
		res.Time = math.NaN()
	}
	var maxPeak int64
	for _, a := range arenas {
		if a.Peak() > maxPeak {
			maxPeak = a.Peak()
		}
	}
	res.PeakPerProc = maxPeak / int64(rpn)
	return res
}

func runBench(eng workloads.Engine, fs *pfs.FS, spec Spec, opts workloads.StageOpts) (workloads.StageStats, int, error) {
	switch spec.Bench {
	case WCUniform, WCWikipedia:
		dist := workloads.Uniform
		if spec.Bench == WCWikipedia {
			dist = workloads.Wikipedia
		}
		r, err := workloads.RunWordCount(eng, fs, workloads.WCConfig{
			Dist: dist, TotalBytes: spec.SizeBytes, Seed: spec.Seed,
		}, opts)
		return r.Stats, 1, err
	case WCZipf:
		r, err := workloads.RunWordCount(eng, fs, workloads.WCConfig{
			TotalBytes: spec.SizeBytes, Seed: spec.Seed,
			Zipf: &workloads.ZipfConfig{Skew: spec.Skew, Contention: spec.Contention},
		}, opts)
		return r.Stats, 1, err
	case OC:
		r, err := workloads.RunOctree(eng, fs, workloads.OCConfig{
			TotalPoints: spec.Points, Seed: spec.Seed,
		}, opts)
		return r.Stats, 1, err
	case BFS:
		r, err := workloads.RunBFS(eng, fs, workloads.BFSConfig{
			Scale: spec.Scale, Seed: spec.Seed,
		}, opts, workloads.MultiRound{MaxRounds: spec.MaxRounds})
		return r.Stats, r.Depth, err
	case TeraSort:
		r, err := workloads.RunTeraSort(eng, fs, workloads.TeraSortConfig{
			Rows: spec.Rows, Seed: spec.Seed,
		}, opts, nil)
		return r.Stats, r.Rounds, err
	case PageRank:
		r, err := workloads.RunPageRank(eng, fs, workloads.PageRankConfig{
			Scale: spec.Scale, Seed: spec.Seed, MaxRounds: spec.MaxRounds,
		}, opts, workloads.MultiRound{}, nil)
		return r.Stats, r.Rounds, err
	case KMeans:
		r, err := workloads.RunKMeans(eng, fs, workloads.KMeansConfig{
			Points: spec.Points, K: spec.K, Dims: spec.Dims,
			Seed: spec.Seed, MaxRounds: spec.MaxRounds,
		}, opts, workloads.MultiRound{})
		return r.Stats, r.Rounds, err
	}
	return workloads.StageStats{}, 0, errors.New("expt: unknown benchmark")
}
