package expt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"mimir/internal/core"
	"mimir/internal/platform"
)

// SkewSpec describes a skew-matrix sweep: the cross product of zipf
// exponents, worker-pool sizes, rank counts, out-of-core policies, and
// partitioner names, each cell one Run on the Comet platform with one rank
// per node (so PeakPerProc is an exact per-rank arena peak, not a node
// average).
type SkewSpec struct {
	Skews        []float64
	Workers      []int
	Ranks        []int
	Policies     []core.OutOfCore
	Partitioners []string
	// SizeBytes is the scaled dataset size per cell (default 1 MiB — the
	// paper-scale "1G" row).
	SizeBytes  int64
	Contention float64
	Seed       uint64
	// PR enables partial reduction (and with it hot-key splitting under the
	// sample partitioner).
	PR bool
}

func (s SkewSpec) withDefaults() SkewSpec {
	if len(s.Skews) == 0 {
		s.Skews = []float64{0, 0.8, 1.1}
	}
	if len(s.Workers) == 0 {
		s.Workers = []int{1}
	}
	if len(s.Ranks) == 0 {
		s.Ranks = []int{4}
	}
	if len(s.Policies) == 0 {
		s.Policies = []core.OutOfCore{core.Error}
	}
	if len(s.Partitioners) == 0 {
		s.Partitioners = []string{"hash", "sample"}
	}
	if s.SizeBytes == 0 {
		s.SizeBytes = PaperSize("1G")
	}
	if s.Seed == 0 {
		s.Seed = Seed
	}
	return s
}

// SkewCell is one measured cell of the matrix, shaped for per-cell JSON
// artifacts (CI uploads one file per cell; see WriteSkewCells).
type SkewCell struct {
	Skew             float64 `json:"skew"`
	Workers          int     `json:"workers"`
	Ranks            int     `json:"ranks"`
	OutOfCore        string  `json:"out_of_core"`
	Partitioner      string  `json:"partitioner"`
	TimeSec          float64 `json:"time_sec"`
	PeakPerRankBytes int64   `json:"peak_per_rank_bytes"`
	SpilledBytes     int64   `json:"spilled_bytes"`
	Err              string  `json:"err,omitempty"`
}

// Name is the cell's stable identifier (and its artifact file stem).
func (c SkewCell) Name() string {
	return fmt.Sprintf("skew%.1f_w%d_r%d_%s_%s",
		c.Skew, c.Workers, c.Ranks, c.OutOfCore, c.Partitioner)
}

// SkewMatrix runs the full cross product and returns one cell per run, in
// deterministic sweep order (skew outermost, partitioner innermost).
func SkewMatrix(s SkewSpec) []SkewCell {
	s = s.withDefaults()
	var cells []SkewCell
	for _, skew := range s.Skews {
		for _, workers := range s.Workers {
			for _, ranks := range s.Ranks {
				for _, ooc := range s.Policies {
					for _, part := range s.Partitioners {
						r := Run(Spec{
							Plat: platform.Comet(), Nodes: ranks, RanksPerNode: 1,
							Engine: Mimir, Hint: true, PR: s.PR, Workers: workers,
							OutOfCore: ooc, Bench: WCZipf, SizeBytes: s.SizeBytes,
							Seed: s.Seed, Skew: skew, Contention: s.Contention,
							Partitioner: part,
						})
						cell := SkewCell{
							Skew: skew, Workers: workers, Ranks: ranks,
							OutOfCore: ooc.String(), Partitioner: part,
							TimeSec:          r.Time,
							PeakPerRankBytes: r.PeakPerProc,
							SpilledBytes:     r.SpilledBytes,
						}
						if r.Err != nil {
							cell.Err = r.Err.Error()
							cell.TimeSec = 0 // NaN is not valid JSON
						}
						cells = append(cells, cell)
					}
				}
			}
		}
	}
	return cells
}

// WriteSkewCells writes each cell as its own indented JSON file
// (<cell name>.json) under dir, creating it if needed.
func WriteSkewCells(dir string, cells []SkewCell) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, c := range cells {
		b, err := json.MarshalIndent(c, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(filepath.Join(dir, c.Name()+".json"), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// FigSkew sweeps the zipf exponent at 4 ranks and plots hash vs sample
// partitioning: under skew the sampled weighted ranges balance record
// traffic across ranks, so both time and the busiest rank's arena peak drop
// relative to FNV-1a hashing. PR stays off here — with partial reduction,
// container memory tracks distinct keys rather than record traffic, which
// is the regime hot-key splitting (exercised by the property battery)
// addresses instead.
func FigSkew() []*Figure {
	f := &Figure{ID: "figskew", Title: "WordCount (Zipf) on Comet, 4 ranks: partitioner vs skew",
		XLabel: "zipf s"}
	cells := SkewMatrix(SkewSpec{
		Skews: []float64{0, 0.8, 1.1}, Ranks: []int{4},
		Partitioners: []string{"hash", "sample"}, Contention: 0.1,
	})
	for _, c := range cells {
		r := Result{Time: c.TimeSec, PeakPerProc: c.PeakPerRankBytes, SpilledBytes: c.SpilledBytes}
		if c.Err != "" {
			r.Err = fmt.Errorf("%s", c.Err)
			r.Time = math.NaN()
		}
		f.Add(c.Partitioner, fmt.Sprintf("%.1f", c.Skew), r)
	}
	return []*Figure{f}
}
