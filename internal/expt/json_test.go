package expt

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleFigure() *Figure {
	f := &Figure{ID: "figX", Title: "sample", XLabel: "n"}
	f.Add("A", "1", Result{Time: 1.5, PeakPerProc: 2 << 20})
	f.Add("A", "2", Result{Time: 3.25, PeakPerProc: 4 << 20, SpilledBytes: 7})
	f.Add("B", "1", Result{Time: math.NaN(), Err: errFake})
	return f
}

func TestJSONRoundTrip(t *testing.T) {
	f := sampleFigure()
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONFigure(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != f.ID || got.Title != f.Title || got.XLabel != f.XLabel {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Points) != len(f.Points) {
		t.Fatalf("points = %d, want %d", len(got.Points), len(f.Points))
	}
	for i := range f.Points {
		a, b := f.Points[i], got.Points[i]
		if a.Series != b.Series || a.X != b.X || a.Note != b.Note {
			t.Errorf("point %d: %+v != %+v", i, a, b)
		}
		if math.IsNaN(a.Time) != math.IsNaN(b.Time) {
			t.Errorf("point %d NaN mismatch", i)
		}
		if !math.IsNaN(a.Time) && a.Time != b.Time {
			t.Errorf("point %d time %v != %v", i, a.Time, b.Time)
		}
	}
}

func TestJSONEncodesFailuresAsNull(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleFigure().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"time_sec": null`) {
		t.Errorf("OOM point not null:\n%s", s)
	}
	if !strings.Contains(s, `"note": "OOM"`) || !strings.Contains(s, `"note": "spill"`) {
		t.Errorf("notes missing:\n%s", s)
	}
}

// Property: WriteJSON/ReadJSONFigure round-trips arbitrary well-formed
// figures.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(ids []uint8, times []float64) bool {
		fig := &Figure{ID: "p", Title: "t", XLabel: "x"}
		for i, id := range ids {
			tm := 1.0
			if i < len(times) && !math.IsNaN(times[i]) && !math.IsInf(times[i], 0) {
				tm = math.Abs(math.Mod(times[i], 1e6))
			}
			fig.AddRaw(Point{Series: string(rune('A' + id%4)), X: string(rune('0' + id%8)), Time: tm, PeakGB: float64(id)})
		}
		var buf bytes.Buffer
		if err := fig.WriteJSON(&buf); err != nil {
			return false
		}
		got, err := ReadJSONFigure(&buf)
		if err != nil {
			return false
		}
		if len(got.Points) != len(fig.Points) {
			return false
		}
		for i := range fig.Points {
			if got.Points[i] != fig.Points[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRenderGolden(t *testing.T) {
	var sb strings.Builder
	sampleFigure().Render(&sb)
	want := "== FIGX: sample ==\n" +
		"-- execution time (s) --\n" +
		"n                               A                  B\n" +
		"1                             1.5                OOM\n" +
		"2                           (3.2)                  -\n" +
		"-- peak memory per process (GB) --\n" +
		"n                               A                  B\n" +
		"1                            2.00                OOM\n" +
		"2                            4.00                  -\n\n"
	if sb.String() != want {
		t.Errorf("render mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}
