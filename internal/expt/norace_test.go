//go:build !race

package expt

// raceEnabled reports whether the race detector is on; the minutes-long
// out-of-core scenarios skip under it (see outofcore_test.go).
const raceEnabled = false
