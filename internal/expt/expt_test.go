package expt

import (
	"math"
	"strings"
	"testing"

	"mimir/internal/platform"
)

// These tests assert the paper's qualitative claims on cheap, targeted runs
// (single specs rather than whole figures). The full sweeps live behind
// `go test -bench` and cmd/mimir-bench.

func TestMRMPIInMemoryLimitsMatchPaper(t *testing.T) {
	// Figure 8a: MR-MPI (64M) handles 512M of uniform text on a Comet node
	// and spills beyond; MR-MPI (512M) handles 4G and spills beyond.
	plat := platform.Comet()
	cases := []struct {
		page     int
		size     string
		inMemory bool
	}{
		{plat.PageSize, "512M", true},
		{plat.PageSize, "1G", false},
		{plat.MaxPageSize, "4G", true},
		{plat.MaxPageSize, "8G", false},
	}
	for _, c := range cases {
		r := Run(Spec{Plat: plat, Nodes: 1, Engine: MRMPI, MRMPIPage: c.page,
			Bench: WCUniform, SizeBytes: PaperSize(c.size), Seed: Seed})
		if r.Failed() {
			t.Fatalf("page=%d size=%s failed: %v", c.page, c.size, r.Err)
		}
		if got := r.InMemory(); got != c.inMemory {
			t.Errorf("page=%d size=%s: inMemory=%v, want %v (spilled %d bytes)",
				c.page, c.size, got, c.inMemory, r.SpilledBytes)
		}
	}
}

func TestMimirRunsLargerThanMRMPI(t *testing.T) {
	// The headline claim: Mimir executes 16G of uniform text in memory on a
	// Comet node — 4x more than MR-MPI's best configuration.
	plat := platform.Comet()
	r := Run(Spec{Plat: plat, Nodes: 1, Engine: Mimir,
		Bench: WCUniform, SizeBytes: PaperSize("16G"), Seed: Seed})
	if !r.InMemory() {
		t.Fatalf("Mimir 16G not in memory: err=%v spilled=%d", r.Err, r.SpilledBytes)
	}
}

func TestMimirUsesLessMemoryThanMRMPI(t *testing.T) {
	// Figure 8: at sizes both can handle, Mimir's peak memory is at least
	// 25% below MR-MPI (64M).
	plat := platform.Comet()
	for _, bench := range []Bench{WCUniform, WCWikipedia} {
		m := Run(Spec{Plat: plat, Nodes: 1, Engine: Mimir, Bench: bench,
			SizeBytes: PaperSize("256M"), Seed: Seed})
		b := Run(Spec{Plat: plat, Nodes: 1, Engine: MRMPI, MRMPIPage: plat.PageSize,
			Bench: bench, SizeBytes: PaperSize("256M"), Seed: Seed})
		if m.Failed() || b.Failed() {
			t.Fatalf("%v: unexpected failure (%v / %v)", bench, m.Err, b.Err)
		}
		if float64(m.PeakPerProc) > 0.75*float64(b.PeakPerProc) {
			t.Errorf("%v: Mimir peak %d not 25%% below MR-MPI %d", bench, m.PeakPerProc, b.PeakPerProc)
		}
	}
}

func TestInMemoryTimesComparable(t *testing.T) {
	// "As long as the dataset can be computed in memory, the execution
	// times of the two frameworks are comparable."
	plat := platform.Comet()
	m := Run(Spec{Plat: plat, Nodes: 1, Engine: Mimir, Bench: WCUniform,
		SizeBytes: PaperSize("512M"), Seed: Seed})
	b := Run(Spec{Plat: plat, Nodes: 1, Engine: MRMPI, MRMPIPage: plat.MaxPageSize,
		Bench: WCUniform, SizeBytes: PaperSize("512M"), Seed: Seed})
	if !m.InMemory() || !b.InMemory() {
		t.Fatal("expected both in memory at 512M")
	}
	ratio := m.Time / b.Time
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("in-memory time ratio Mimir/MR-MPI = %.2f, want within 2x", ratio)
	}
}

func TestSpillCliff(t *testing.T) {
	// Figure 1's shape: the first out-of-core point is at least 10x slower
	// than the last in-memory point at half its size.
	plat := platform.Comet()
	inMem := Run(Spec{Plat: plat, Nodes: 1, Engine: MRMPI, MRMPIPage: plat.MaxPageSize,
		Bench: WCUniform, SizeBytes: PaperSize("4G"), Seed: Seed})
	spill := Run(Spec{Plat: plat, Nodes: 1, Engine: MRMPI, MRMPIPage: plat.MaxPageSize,
		Bench: WCUniform, SizeBytes: PaperSize("8G"), Seed: Seed})
	if !inMem.InMemory() {
		t.Fatal("4G should be in memory")
	}
	if spill.InMemory() {
		t.Fatal("8G should spill")
	}
	if spill.Time < 10*inMem.Time {
		t.Errorf("spill time %.1f not >= 10x in-memory %.1f", spill.Time, inMem.Time)
	}
}

func TestMRMPIPeakIsDatasetIndependent(t *testing.T) {
	// MR-MPI's pages are static: peak memory does not grow with the data.
	plat := platform.Comet()
	small := Run(Spec{Plat: plat, Nodes: 1, Engine: MRMPI, MRMPIPage: plat.PageSize,
		Bench: WCUniform, SizeBytes: PaperSize("256M"), Seed: Seed})
	big := Run(Spec{Plat: plat, Nodes: 1, Engine: MRMPI, MRMPIPage: plat.PageSize,
		Bench: WCUniform, SizeBytes: PaperSize("4G"), Seed: Seed})
	if small.PeakPerProc != big.PeakPerProc {
		t.Errorf("MR-MPI peak varies with dataset: %d vs %d", small.PeakPerProc, big.PeakPerProc)
	}
}

func TestCPSExtendsMimirRange(t *testing.T) {
	// Figure 12a on Mira: baseline Mimir OOMs at 8G; with compression it
	// completes in memory — 16x MR-MPI's best (512M).
	plat := platform.Mira()
	base := Run(Spec{Plat: plat, Nodes: 1, Engine: Mimir, Bench: WCUniform,
		SizeBytes: PaperSize("8G"), Seed: Seed})
	if !base.Failed() {
		t.Errorf("baseline Mimir at 8G on Mira should OOM (peak %d)", base.PeakPerProc)
	}
	cps := Run(Spec{Plat: plat, Nodes: 1, Engine: Mimir, CPS: true, Bench: WCUniform,
		SizeBytes: PaperSize("8G"), Seed: Seed})
	if !cps.InMemory() {
		t.Errorf("Mimir(cps) at 8G on Mira should run in memory: err=%v", cps.Err)
	}
}

func TestCPSDoesNotChangeMRMPIPeak(t *testing.T) {
	// "With MR-MPI we do not observe any impact on peak memory usage."
	plat := platform.Comet()
	base := Run(Spec{Plat: plat, Nodes: 1, Engine: MRMPI, MRMPIPage: plat.MaxPageSize,
		Bench: WCUniform, SizeBytes: PaperSize("2G"), Seed: Seed})
	cps := Run(Spec{Plat: plat, Nodes: 1, Engine: MRMPI, MRMPIPage: plat.MaxPageSize, CPS: true,
		Bench: WCUniform, SizeBytes: PaperSize("2G"), Seed: Seed})
	if base.PeakPerProc != cps.PeakPerProc {
		t.Errorf("MR-MPI peak changed with cps: %d vs %d", base.PeakPerProc, cps.PeakPerProc)
	}
}

func TestLadderMonotoneMemory(t *testing.T) {
	// Figure 13b at 4G (Wikipedia, Mira): every added optimization must not
	// increase peak memory, and hint+pr must be well below baseline.
	plat := platform.Mira()
	run := func(hint, pr bool) Result {
		return Run(Spec{Plat: plat, Nodes: 1, Engine: Mimir, Hint: hint, PR: pr,
			Bench: WCWikipedia, SizeBytes: PaperSize("2G"), Seed: Seed})
	}
	base := run(false, false)
	hint := run(true, false)
	hintPR := run(true, true)
	if base.Failed() || hint.Failed() || hintPR.Failed() {
		t.Fatalf("unexpected failures: %v %v %v", base.Err, hint.Err, hintPR.Err)
	}
	if hint.PeakPerProc > base.PeakPerProc {
		t.Errorf("hint increased peak: %d > %d", hint.PeakPerProc, base.PeakPerProc)
	}
	if float64(hintPR.PeakPerProc) > 0.6*float64(base.PeakPerProc) {
		t.Errorf("hint+pr peak %d not well below baseline %d", hintPR.PeakPerProc, base.PeakPerProc)
	}
}

func TestHintImprovesBFSTime(t *testing.T) {
	// "The KV-hint optimization also improves the performance of BFS."
	plat := platform.Mira()
	base := Run(Spec{Plat: plat, Nodes: 1, Engine: Mimir, Bench: BFS, Scale: 9, Seed: Seed})
	hint := Run(Spec{Plat: plat, Nodes: 1, Engine: Mimir, Hint: true, Bench: BFS, Scale: 9, Seed: Seed})
	if base.Failed() || hint.Failed() {
		t.Fatalf("failures: %v %v", base.Err, hint.Err)
	}
	if hint.Time >= base.Time {
		t.Errorf("hint BFS time %.2f not below baseline %.2f", hint.Time, base.Time)
	}
}

func TestWeakScalingMimirFlat(t *testing.T) {
	// Figure 10 (scaled down): Mimir's weak-scaling time at 8 nodes is
	// within 2x of 2 nodes.
	plat := platform.Comet()
	at := func(nodes int) Result {
		return Run(Spec{Plat: plat, Nodes: nodes, RanksPerNode: 8, Engine: Mimir,
			Bench: WCUniform, SizeBytes: PaperSize("256M") * int64(nodes), Seed: Seed})
	}
	t2, t8 := at(2), at(8)
	if t2.Failed() || t8.Failed() {
		t.Fatalf("failures: %v %v", t2.Err, t8.Err)
	}
	if t8.Time > 2*t2.Time {
		t.Errorf("Mimir weak scaling: %.1fs at 8 nodes vs %.1fs at 2 (not flat)", t8.Time, t2.Time)
	}
}

func TestFig7Saving(t *testing.T) {
	// The KV-hint must save 20-40% of KV bytes (paper: ~26%).
	def, hinted := kvSizes(PaperSize("1G"))
	saving := 1 - float64(hinted)/float64(def)
	if saving < 0.20 || saving > 0.40 {
		t.Errorf("hint saving = %.1f%%, want 20-40%%", 100*saving)
	}
}

func TestSizeLabelRoundTrip(t *testing.T) {
	for _, label := range []string{"256M", "512M", "1G", "4G", "64G"} {
		if got := SizeLabel(PaperSize(label)); got != label {
			t.Errorf("SizeLabel(PaperSize(%q)) = %q", label, got)
		}
	}
}

func TestBytesToPaperGB(t *testing.T) {
	// 1 MiB scaled is 1 GiB in paper terms.
	if got := BytesToPaperGB(1 << 20); got != 1.0 {
		t.Errorf("BytesToPaperGB(1MiB) = %v, want 1", got)
	}
}

func TestFigureAccessors(t *testing.T) {
	f := &Figure{ID: "x", Title: "t", XLabel: "n"}
	f.Add("A", "1", Result{Time: 1, PeakPerProc: 1 << 20})
	f.Add("B", "1", Result{Time: math.NaN(), Err: errFake, PeakPerProc: 0})
	f.Add("A", "2", Result{Time: 2, SpilledBytes: 10})
	if got := f.SeriesNames(); len(got) != 2 || got[0] != "A" {
		t.Errorf("SeriesNames = %v", got)
	}
	if got := f.XValues(); len(got) != 2 || got[1] != "2" {
		t.Errorf("XValues = %v", got)
	}
	p, ok := f.Get("B", "1")
	if !ok || p.Note != "OOM" {
		t.Errorf("Get(B,1) = %+v, %v", p, ok)
	}
	p, _ = f.Get("A", "2")
	if p.Note != "spill" || p.OK() {
		t.Errorf("spill point = %+v", p)
	}
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	for _, want := range []string{"OOM", "(2.0)", "1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

var errFake = errorString("fake")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestBenchString(t *testing.T) {
	names := map[Bench]string{WCUniform: "WC (Uniform)", WCWikipedia: "WC (Wikipedia)", OC: "OC", BFS: "BFS"}
	for b, want := range names {
		if b.String() != want {
			t.Errorf("%d.String() = %q", int(b), b.String())
		}
	}
}

func TestMultiNodeMemoryIsPerNode(t *testing.T) {
	// Running the same total dataset on more nodes must lower the
	// per-process peak: the data spreads over more arenas.
	plat := platform.Comet()
	one := Run(Spec{Plat: plat, Nodes: 1, RanksPerNode: 8, Engine: Mimir,
		Bench: WCUniform, SizeBytes: PaperSize("1G"), Seed: Seed})
	four := Run(Spec{Plat: plat, Nodes: 4, RanksPerNode: 8, Engine: Mimir,
		Bench: WCUniform, SizeBytes: PaperSize("1G"), Seed: Seed})
	if one.Failed() || four.Failed() {
		t.Fatalf("failures: %v %v", one.Err, four.Err)
	}
	if four.PeakPerProc >= one.PeakPerProc {
		t.Errorf("4-node per-proc peak %d not below 1-node %d", four.PeakPerProc, one.PeakPerProc)
	}
}

func TestSkewFindsTheHotNode(t *testing.T) {
	// On skewed data the busiest node's peak (what Result reports) must
	// exceed the average node's: the hot words concentrate somewhere.
	plat := platform.Comet()
	r := Run(Spec{Plat: plat, Nodes: 4, RanksPerNode: 8, Engine: Mimir,
		Bench: WCWikipedia, SizeBytes: PaperSize("2G"), Seed: Seed})
	u := Run(Spec{Plat: plat, Nodes: 4, RanksPerNode: 8, Engine: Mimir,
		Bench: WCUniform, SizeBytes: PaperSize("2G"), Seed: Seed})
	if r.Failed() || u.Failed() {
		t.Fatalf("failures: %v %v", r.Err, u.Err)
	}
	if r.PeakPerProc <= u.PeakPerProc {
		t.Errorf("skewed peak %d not above uniform peak %d", r.PeakPerProc, u.PeakPerProc)
	}
}

func TestLog2Int(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 128: 7}
	for n, want := range cases {
		if got := log2int(n); got != want {
			t.Errorf("log2int(%d) = %d, want %d", n, got, want)
		}
	}
}
