package expt

import (
	"testing"

	"mimir/internal/platform"
)

// Golden-shape regression tests: the quantitative targets from DESIGN.md §3
// that define a faithful reproduction. Unlike the qualitative claims in
// expt_test.go, these pin the headline factors — Figure 1's out-of-core
// cliff and Figure 8's peak-memory reductions — so a future refactor cannot
// silently erode the reproduction while keeping the code green.

// TestShapeFig1SpillCliff asserts the paper's "nearly three orders of
// magnitude degradation in performance": MR-MPI (512M) at 32G, deep into
// the out-of-core regime, is at least 100x slower than the last in-memory
// point (4G). Measured: 3107 s vs 17.0 s, a 183x degradation (the 64G point
// reaches 373x but costs several real seconds per test run).
func TestShapeFig1SpillCliff(t *testing.T) {
	plat := platform.Comet()
	run := func(label string) Result {
		return Run(Spec{Plat: plat, Nodes: 1, Engine: MRMPI, MRMPIPage: plat.MaxPageSize,
			Bench: WCUniform, SizeBytes: PaperSize(label), Seed: Seed})
	}
	inMem := run("4G")
	spill := run("32G")
	if !inMem.InMemory() {
		t.Fatalf("4G should be in memory (err=%v, spilled=%d)", inMem.Err, inMem.SpilledBytes)
	}
	if spill.InMemory() {
		t.Fatal("32G should be out of core")
	}
	t.Logf("cliff: %.1f s in-memory at 4G vs %.1f s at 32G (%.0fx)",
		inMem.Time, spill.Time, spill.Time/inMem.Time)
	if spill.Time < 100*inMem.Time {
		t.Errorf("spill cliff %.0fx below the golden 100x (%.1f s vs %.1f s)",
			spill.Time/inMem.Time, spill.Time, inMem.Time)
	}
}

// TestShapeFig8PeakReductions asserts Figure 8's headline memory wins on
// one Comet node: Mimir's peak memory is at least 25% below MR-MPI (64M)
// for WC, 34% for OC, and 64% for BFS.
func TestShapeFig8PeakReductions(t *testing.T) {
	plat := platform.Comet()
	cases := []struct {
		name      string
		spec      Spec
		reduction float64
	}{
		{"WC", Spec{Bench: WCUniform, SizeBytes: PaperSize("256M")}, 0.25},
		{"OC", Spec{Bench: OC, Points: 1 << 14}, 0.34},  // 2^24 paper points
		{"BFS", Spec{Bench: BFS, Scale: 9}, 0.64},       // 2^19 paper vertices
	}
	for _, c := range cases {
		mimirSpec, mrmpiSpec := c.spec, c.spec
		mimirSpec.Plat, mimirSpec.Nodes, mimirSpec.Seed = plat, 1, Seed
		mimirSpec.Engine = Mimir
		mrmpiSpec.Plat, mrmpiSpec.Nodes, mrmpiSpec.Seed = plat, 1, Seed
		mrmpiSpec.Engine, mrmpiSpec.MRMPIPage = MRMPI, plat.PageSize
		m := Run(mimirSpec)
		b := Run(mrmpiSpec)
		if m.Failed() || b.Failed() {
			t.Fatalf("%s: unexpected failure (%v / %v)", c.name, m.Err, b.Err)
		}
		got := 1 - float64(m.PeakPerProc)/float64(b.PeakPerProc)
		t.Logf("%s: Mimir peak %d vs MR-MPI (64M) %d — %.1f%% reduction (golden >= %.0f%%)",
			c.name, m.PeakPerProc, b.PeakPerProc, 100*got, 100*c.reduction)
		if got < c.reduction {
			t.Errorf("%s: Mimir peak reduction %.1f%% below the golden %.0f%% (%d vs %d bytes)",
				c.name, 100*got, 100*c.reduction, m.PeakPerProc, b.PeakPerProc)
		}
	}
}
