package workloads

import (
	"fmt"
	"testing"

	"mimir/internal/core"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
)

func TestWordCountEmptyInput(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 3, Net: testNet()})
	arena := mem.NewArena(0)
	err := w.Run(func(c *mpi.Comm) error {
		res, err := RunWordCount(NewMimirEngine(c, arena), nil,
			WCConfig{Dist: Uniform, TotalBytes: 0, Seed: 1}, StageOpts{})
		if err != nil {
			return err
		}
		if res.UniqueWords != 0 || res.TotalWords != 0 {
			return fmt.Errorf("empty input produced %d words", res.TotalWords)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if arena.Used() != 0 {
		t.Errorf("arena used %d after empty job", arena.Used())
	}
}

func TestOctreeFewPoints(t *testing.T) {
	// Fewer points than the density threshold: no refinement beyond the
	// point where no octant is dense.
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(0)
	err := w.Run(func(c *mpi.Comm) error {
		res, err := RunOctree(NewMimirEngine(c, arena), nil,
			OCConfig{TotalPoints: 8, Seed: 3, Density: 0.5, MaxLevel: 6}, StageOpts{})
		if err != nil {
			return err
		}
		if res.Levels > 6 {
			return fmt.Errorf("levels = %d", res.Levels)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOctreeMaxLevelCap(t *testing.T) {
	// A very low threshold keeps everything dense; refinement must stop at
	// MaxLevel.
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(0)
	err := w.Run(func(c *mpi.Comm) error {
		res, err := RunOctree(NewMimirEngine(c, arena), nil,
			OCConfig{TotalPoints: 1 << 10, Seed: 3, Density: 1e-9, MaxLevel: 3}, StageOpts{})
		if err != nil {
			return err
		}
		if res.Levels != 3 {
			return fmt.Errorf("levels = %d, want MaxLevel 3", res.Levels)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBFSIsolatedRoot(t *testing.T) {
	// Rooting BFS at a vertex with no edges must terminate at depth 1 with
	// one visited vertex. R-MAT at small scale leaves many vertices
	// isolated; find one.
	cfg := BFSConfig{Scale: 6, EdgeFactor: 2, Seed: 77}
	adj := map[uint64]bool{}
	for rank := 0; rank < 2; rank++ {
		for _, e := range genEdges(cfg.Seed, cfg.Scale, cfg.EdgeFactor, rank, 2) {
			adj[e[0]] = true
			adj[e[1]] = true
		}
	}
	isolated := uint64(0)
	found := false
	for v := uint64(0); v < 64; v++ {
		if !adj[v] {
			isolated, found = v, true
			break
		}
	}
	if !found {
		t.Skip("no isolated vertex at this seed")
	}
	cfg.Root = isolated
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(0)
	res := make([]BFSResult, 2)
	err := w.Run(func(c *mpi.Comm) error {
		r, err := RunBFS(NewMimirEngine(c, arena), nil, cfg, StageOpts{}, MultiRound{})
		res[c.Rank()] = r
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Visited != 1 {
		t.Errorf("visited = %d from isolated root, want 1", res[0].Visited)
	}
}

func TestBFSDepthMatchesReference(t *testing.T) {
	cfg := BFSConfig{Scale: 7, EdgeFactor: 4, Seed: 13, Root: 2, Validate: true}
	wantVisited, wantDepth := refBFS(cfg, 2)
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(0)
	res := make([]BFSResult, 2)
	err := w.Run(func(c *mpi.Comm) error {
		r, err := RunBFS(NewMimirEngine(c, arena), nil, cfg, StageOpts{}, MultiRound{})
		res[c.Rank()] = r
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Visited != wantVisited {
		t.Errorf("visited = %d, want %d", res[0].Visited, wantVisited)
	}
	// Engine depth counts frontier-expansion rounds; the reference counts
	// levels including the last empty expansion the same way.
	if res[0].Depth != wantDepth {
		t.Errorf("depth = %d, want %d", res[0].Depth, wantDepth)
	}
}

func TestBFSOOMOnTinyNode(t *testing.T) {
	// The partitioning phase holds the adjacency; a node too small for it
	// must fail with OOM rather than wrong results.
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(64 << 10)
	err := w.Run(func(c *mpi.Comm) error {
		_, err := RunBFS(NewMimirEngine(c, arena), nil,
			BFSConfig{Scale: 10, EdgeFactor: 16, Seed: 5}, StageOpts{}, MultiRound{})
		return err
	})
	if err == nil {
		t.Fatal("BFS succeeded on a 64 KiB node")
	}
}

func TestWordCountWikipediaSkewConcentratesOutput(t *testing.T) {
	// The hot Zipf words hash to specific ranks; output shuffled bytes per
	// rank must be visibly imbalanced compared to Uniform.
	imbalance := func(dist Distribution) float64 {
		const p = 8
		w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
		arena := mem.NewArena(0)
		recv := make([]int64, p)
		err := w.Run(func(c *mpi.Comm) error {
			res, err := RunWordCount(NewMimirEngine(c, arena), nil,
				WCConfig{Dist: dist, TotalBytes: 1 << 16, Seed: 4}, StageOpts{})
			recv[c.Rank()] = int64(res.TotalWords)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		var max, sum int64
		for _, n := range recv {
			if n > max {
				max = n
			}
			sum += n
		}
		return float64(max) * float64(p) / float64(sum)
	}
	u := imbalance(Uniform)
	wk := imbalance(Wikipedia)
	if wk < u {
		t.Errorf("Wikipedia imbalance %.2f not above Uniform %.2f", wk, u)
	}
}

func TestEnginesShareSpillFS(t *testing.T) {
	// Two MR-MPI ranks spilling concurrently must not collide on file
	// names.
	w := mpi.NewWorld(mpi.Config{Size: 4, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{Bandwidth: 1e9})
	err := w.Run(func(c *mpi.Comm) error {
		eng := NewMRMPIEngine(c, arena, spill)
		eng.PageSize = 256 // force spilling
		_, err := RunWordCount(eng, nil,
			WCConfig{Dist: Uniform, TotalBytes: 1 << 14, Seed: 6}, StageOpts{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTextInputRecordBufferReuse(t *testing.T) {
	// The generator reuses its record buffer; consumers must not retain it.
	// This test documents the contract by showing the aliasing.
	in := TextInput(nil, nil, Uniform, 1, 4096, 0, 1)
	var first []byte
	n := 0
	_ = in(func(rec core.Record) error {
		if n == 0 {
			first = rec.Val // illegal retention
		}
		n++
		return nil
	})
	if n > 1 && first != nil {
		// The buffer was reused: the retained slice no longer holds the
		// first record (same backing array, new content). Nothing to
		// assert beyond non-panicking; the engines copy before returning.
		_ = first[0]
	}
}
