package workloads

import (
	"encoding/binary"
	"fmt"

	"mimir/internal/core"
	"mimir/internal/kvbuf"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
)

// BFS is the paper's third benchmark: an iterative, map-only graph traversal
// building a parents tree from a source vertex (one of the Graph500
// kernels). It has two phases:
//
//  1. graph partitioning — one map-only MapReduce distributes every edge to
//     the owner rank of its source endpoint, where the local adjacency is
//     built (the paper notes BFS's peak memory occurs here);
//  2. traversal — one map-only MapReduce per BFS level: the map expands the
//     current frontier's neighbors, the shuffle routes (vertex, parent)
//     candidates to the vertex's owner, and the owner marks unvisited
//     vertices and forms the next frontier.
//
// Partial reduction does not apply (there is no reduce phase), matching the
// paper; KV compression deduplicates candidate parents before the exchange.

// BFSConfig describes one BFS run.
type BFSConfig struct {
	// Scale: the graph has 2^Scale vertices (the paper sweeps 2^18..2^26).
	Scale int
	// EdgeFactor is edges per vertex (default 16, Graph500's edgefactor).
	EdgeFactor int
	Seed       uint64
	// Root is the source vertex (clamped into range).
	Root uint64
	// Validate runs the Graph500-style tree check after the traversal
	// (root is its own parent, parents are visited, tree edges exist).
	// Like Graph500's own validation it is not part of the timed kernel,
	// so it is off by default and enabled by the tests.
	Validate bool
}

// BFSResult summarizes a run.
type BFSResult struct {
	Visited int64 // vertices reached (global)
	Depth   int   // BFS levels executed (the multi-round driver's round count)
	// Parents is this rank's partition of the parents tree: every visited
	// vertex it owns, mapped to the vertex that discovered it (the root maps
	// to itself). The determinism battery serializes it for byte comparison.
	Parents map[uint64]uint64
	Stats   StageStats
}

// BFSHint is BFS's KV-hint: vertices and parents are fixed 8-byte integers
// (the paper's example of graph applications with fixed-length types).
func BFSHint() kvbuf.Hint { return kvbuf.Hint{Key: kvbuf.Fixed(8), Val: kvbuf.Fixed(8)} }

// BFSCombine keeps one candidate parent per vertex when compressing.
func BFSCombine(_ []byte, existing, _ []byte) ([]byte, error) { return existing, nil }

// vertexOwner must agree with the engines' key partitioning, which hashes
// the encoded 8-byte key.
func vertexOwner(v uint64, nranks int) int {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return int(kvbuf.HashKey(b[:]) % uint64(nranks))
}

// adjacency is a rank's partition of the graph.
type adjacency struct {
	neighbors map[uint64][]uint64
	bytes     int64 // accounting estimate charged to the arena
}

const adjEntryBytes = 48 // per-vertex map overhead estimate
const adjEdgeBytes = 8

// RunBFS executes both phases on the given engine. mr supplies the shared
// multi-round machinery for the traversal (crash hooks, per-level
// checkpoints, an optional MaxRounds depth cap); its Threshold must stay 0
// — a level ends the traversal exactly when no rank discovered a vertex.
func RunBFS(e Engine, fs *pfs.FS, cfg BFSConfig, opts StageOpts, mr MultiRound) (BFSResult, error) {
	if mr.Threshold != 0 {
		return BFSResult{}, fmt.Errorf("workloads: BFS terminates on an empty frontier; Threshold must be 0")
	}
	comm := e.Comm()
	if cfg.EdgeFactor <= 0 {
		cfg.EdgeFactor = DefaultEdgeFactor
	}
	nVerts := uint64(1) << uint(cfg.Scale)
	root := cfg.Root % nVerts

	arena := engineArena(e)
	var res BFSResult

	// ---- Phase 1: graph partitioning ----
	edges := genEdges(cfg.Seed, cfg.Scale, cfg.EdgeFactor, comm.Rank(), comm.Size())
	if fs != nil {
		fs.ChargeRead(comm.Clock(), int64(len(edges))*16)
	}
	edgeInput := func(emit func(rec core.Record) error) error {
		var rec [16]byte
		for _, ed := range edges {
			binary.LittleEndian.PutUint64(rec[0:], ed[0])
			binary.LittleEndian.PutUint64(rec[8:], ed[1])
			if err := emit(core.Record{Val: rec[:]}); err != nil {
				return err
			}
		}
		return nil
	}
	// Each undirected edge contributes both directions.
	edgeMap := func(rec core.Record, emit core.Emitter) error {
		u := rec.Val[0:8]
		v := rec.Val[8:16]
		if err := emit.Emit(u, v); err != nil {
			return err
		}
		return emit.Emit(v, u)
	}
	adj := &adjacency{neighbors: map[uint64][]uint64{}}
	charge := func(n int64) error {
		if arena == nil {
			return nil
		}
		if err := arena.Alloc(n); err != nil {
			return fmt.Errorf("workloads: building adjacency: %w", err)
		}
		adj.bytes += n
		return nil
	}
	defer func() {
		if arena != nil && adj.bytes > 0 {
			arena.Free(adj.bytes)
		}
	}()
	// Phase 1 must not compress: every (u,v) pair is a distinct edge.
	p1opts := opts
	p1opts.Combiner = nil
	p1opts.PartialReduce = nil
	stats, err := e.RunStage(p1opts, edgeInput, edgeMap, nil, func(k, v []byte) error {
		u := binary.LittleEndian.Uint64(k)
		w := binary.LittleEndian.Uint64(v)
		lst, ok := adj.neighbors[u]
		if !ok {
			if err := charge(adjEntryBytes); err != nil {
				return err
			}
		}
		if err := charge(adjEdgeBytes); err != nil {
			return err
		}
		adj.neighbors[u] = append(lst, w)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Stats = stats

	// ---- Phase 2: traversal ----
	parent := map[uint64]uint64{}
	var frontier []uint64
	if vertexOwner(root, comm.Size()) == comm.Rank() {
		parent[root] = root
		frontier = append(frontier, root)
		if err := charge(16); err != nil {
			return res, err
		}
	}
	// Each level is one round of the shared multi-round driver: expand the
	// frontier through a map-only stage, then vote with the new frontier's
	// size — the traversal ends the first round nobody discovered anything.
	p2opts := opts
	p2opts.PartialReduce = nil // map-only: no reduce to replace
	rr, err := RunRounds(e, p2opts, mr, func(round int, ropts StageOpts) (int64, StageStats, error) {
		cur := frontier
		frontier = nil
		frontierInput := func(emit func(rec core.Record) error) error {
			var rec [8]byte
			for _, u := range cur {
				binary.LittleEndian.PutUint64(rec[:], u)
				if err := emit(core.Record{Val: rec[:]}); err != nil {
					return err
				}
			}
			return nil
		}
		expandMap := func(rec core.Record, emit core.Emitter) error {
			u := binary.LittleEndian.Uint64(rec.Val)
			for _, w := range adj.neighbors[u] {
				var wb [8]byte
				binary.LittleEndian.PutUint64(wb[:], w)
				if err := emit.Emit(wb[:], rec.Val); err != nil {
					return err
				}
			}
			return nil
		}
		stats, err := e.RunStage(ropts, frontierInput, expandMap, nil, func(k, v []byte) error {
			w := binary.LittleEndian.Uint64(k)
			if _, seen := parent[w]; seen {
				return nil
			}
			parent[w] = binary.LittleEndian.Uint64(v)
			frontier = append(frontier, w)
			return charge(16)
		})
		if err != nil {
			return 0, stats, err
		}
		return int64(len(frontier)), stats, nil
	})
	if err != nil {
		return res, err
	}
	res.Stats.accumulate(rr.Stats)
	res.Depth = rr.Rounds

	visited, err := comm.AllreduceInt64([]int64{int64(len(parent))}, mpi.OpSum)
	if err != nil {
		return res, err
	}
	res.Visited = visited[0]
	res.Parents = parent

	if cfg.Validate {
		if err := validateBFSTree(comm, adj, parent, root); err != nil {
			return res, fmt.Errorf("workloads: BFS validation failed: %w", err)
		}
	}
	return res, nil
}

// validateBFSTree runs the Graph500-style result check on the distributed
// parents tree: (1) the root is its own parent; (2) every visited vertex's
// parent is itself visited; (3) every tree edge (v, parent[v]) exists in
// the graph. Checks 2 and 3 need remote information, gathered with one
// map-reduce-free exchange: each rank sends (parent, v) queries to the
// parent's owner, which verifies visitation and edge existence against its
// local adjacency.
func validateBFSTree(comm *mpi.Comm, adj *adjacency, parent map[uint64]uint64, root uint64) error {
	p := comm.Size()
	send := make([][]byte, p)
	for v, pa := range parent {
		if v == root {
			if pa != root {
				return fmt.Errorf("root %d has parent %d", root, pa)
			}
			continue
		}
		var q [16]byte
		binary.LittleEndian.PutUint64(q[0:], pa)
		binary.LittleEndian.PutUint64(q[8:], v)
		owner := vertexOwner(pa, p)
		send[owner] = append(send[owner], q[:]...)
	}
	recv, err := comm.Alltoallv(send)
	if err != nil {
		return err
	}
	bad := int64(0)
	for _, chunk := range recv {
		for off := 0; off+16 <= len(chunk); off += 16 {
			pa := binary.LittleEndian.Uint64(chunk[off:])
			v := binary.LittleEndian.Uint64(chunk[off+8:])
			if _, ok := parent[pa]; !ok {
				bad++ // parent of a visited vertex is unvisited
				continue
			}
			found := false
			for _, w := range adj.neighbors[pa] {
				if w == v {
					found = true
					break
				}
			}
			if !found {
				bad++ // tree edge not in graph
			}
		}
	}
	total, err := comm.AllreduceInt64([]int64{bad}, mpi.OpSum)
	if err != nil {
		return err
	}
	if total[0] != 0 {
		return fmt.Errorf("%d invalid tree edges", total[0])
	}
	return nil
}
