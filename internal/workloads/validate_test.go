package workloads

import (
	"strings"
	"testing"

	"mimir/internal/mem"
	"mimir/internal/mpi"
)

// buildValidationFixture constructs a tiny distributed graph and a correct
// BFS parents map on each rank, then lets corrupt mutate one rank's state.
func runValidation(t *testing.T, corrupt func(rank int, adj *adjacency, parent map[uint64]uint64)) error {
	t.Helper()
	const p = 2
	// Graph: 0-1, 1-2, 2-3 (path). BFS from 0: parent = {0:0, 1:0, 2:1, 3:2}.
	edges := [][2]uint64{{0, 1}, {1, 2}, {2, 3}}
	fullParent := map[uint64]uint64{0: 0, 1: 0, 2: 1, 3: 2}
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	return w.Run(func(c *mpi.Comm) error {
		adj := &adjacency{neighbors: map[uint64][]uint64{}}
		for _, e := range edges {
			if vertexOwner(e[0], p) == c.Rank() {
				adj.neighbors[e[0]] = append(adj.neighbors[e[0]], e[1])
			}
			if vertexOwner(e[1], p) == c.Rank() {
				adj.neighbors[e[1]] = append(adj.neighbors[e[1]], e[0])
			}
		}
		parent := map[uint64]uint64{}
		for v, pa := range fullParent {
			if vertexOwner(v, p) == c.Rank() {
				parent[v] = pa
			}
		}
		if corrupt != nil {
			corrupt(c.Rank(), adj, parent)
		}
		return validateBFSTree(c, adj, parent, 0)
	})
}

func TestValidateBFSTreeAcceptsCorrect(t *testing.T) {
	if err := runValidation(t, nil); err != nil {
		t.Fatalf("correct tree rejected: %v", err)
	}
}

func TestValidateBFSTreeRejectsBadRoot(t *testing.T) {
	err := runValidation(t, func(rank int, adj *adjacency, parent map[uint64]uint64) {
		if _, ok := parent[0]; ok {
			parent[0] = 3 // root must be its own parent
		}
	})
	if err == nil || !strings.Contains(err.Error(), "root") {
		t.Fatalf("bad root accepted: %v", err)
	}
}

func TestValidateBFSTreeRejectsPhantomEdge(t *testing.T) {
	err := runValidation(t, func(rank int, adj *adjacency, parent map[uint64]uint64) {
		// Vertex 3's parent becomes 0, but edge (0,3) does not exist.
		if _, ok := parent[3]; ok {
			parent[3] = 0
		}
	})
	if err == nil {
		t.Fatal("phantom tree edge accepted")
	}
}

// refOctree runs the clustering algorithm serially over the identical
// point set and returns (levels refined, total dense octants).
func refOctree(cfg OCConfig, nranks int) (levels, totalDense int) {
	if cfg.Density <= 0 {
		cfg.Density = 0.01
	}
	if cfg.MaxLevel <= 0 {
		cfg.MaxLevel = 8
	}
	threshold := uint64(float64(cfg.TotalPoints) * cfg.Density)
	if threshold < 1 {
		threshold = 1
	}
	var pts [][3]float64
	for rank := 0; rank < nranks; rank++ {
		pts = append(pts, genPoints(cfg.Seed, cfg.TotalPoints, rank, nranks)...)
	}
	dense := map[uint64]bool{}
	for level := 1; level <= cfg.MaxLevel; level++ {
		counts := map[uint64]uint64{}
		for _, p := range pts {
			k := octKey(level, p[0], p[1], p[2])
			if level > 1 && !dense[parentKey(k)] {
				continue
			}
			counts[k]++
		}
		dense = map[uint64]bool{}
		for k, n := range counts {
			if n >= threshold {
				dense[k] = true
			}
		}
		levels = level
		totalDense += len(dense)
		if len(dense) == 0 {
			break
		}
	}
	return levels, totalDense
}

func TestOctreeMatchesSerialReference(t *testing.T) {
	const p = 3
	cfg := OCConfig{TotalPoints: 1 << 13, Seed: 51, MaxLevel: 6}
	wantLevels, wantDense := refOctree(cfg, p)
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	res := make([]OCResult, p)
	err := w.Run(func(c *mpi.Comm) error {
		r, err := RunOctree(NewMimirEngine(c, arena), nil, cfg, StageOpts{})
		res[c.Rank()] = r
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Levels != wantLevels || res[0].TotalDense != wantDense {
		t.Errorf("OC = levels %d dense %d, serial reference = %d / %d",
			res[0].Levels, res[0].TotalDense, wantLevels, wantDense)
	}
	if wantDense == 0 {
		t.Error("reference found no dense octants; test is vacuous")
	}
}

func TestValidateBFSTreeRejectsUnvisitedParent(t *testing.T) {
	err := runValidation(t, func(rank int, adj *adjacency, parent map[uint64]uint64) {
		// Vertex 2 claims parent 1, but 1 is deleted from the visited set.
		delete(parent, 1)
	})
	if err == nil {
		t.Fatal("unvisited parent accepted")
	}
}
