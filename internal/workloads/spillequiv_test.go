package workloads

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"mimir/internal/core"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
	"mimir/internal/spill"
)

// spillRun runs one workload on the Mimir engine across 4 ranks with the
// given arena capacity and out-of-core policy, returning a deterministic
// summary of the global output plus the accumulated stage stats.
func spillRun(t *testing.T, capacity int64, ooc core.OutOfCore,
	run func(e *MimirEngine) (string, StageStats, error)) (string, StageStats) {
	t.Helper()
	const p = 4
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(capacity)
	spillFS := pfs.New(pfs.Config{Bandwidth: 1 << 30, Latency: 1e-4})
	group := spill.NewGroup() // one node: the ranks share arena and eviction
	summaries := make([]string, p)
	var mu sync.Mutex
	var total StageStats
	err := w.Run(func(c *mpi.Comm) error {
		e := NewMimirEngine(c, arena)
		e.PageSize = 1 << 10
		e.CommBuf = 8 << 10
		e.OutOfCore = ooc
		e.SpillFS = spillFS
		e.SpillGroup = group
		sum, stats, err := run(e)
		if err != nil {
			return err
		}
		summaries[c.Rank()] = sum
		mu.Lock()
		total.accumulate(stats)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("capacity=%d policy=%v: %v", capacity, ooc, err)
	}
	if used := arena.Used(); used != 0 {
		t.Fatalf("capacity=%d policy=%v: arena used %d after run", capacity, ooc, used)
	}
	return fmt.Sprint(summaries), total
}

// TestSpillEquivalence is satellite property (c): for each workload, the
// output under OutOfCore: SpillWhenNeeded in an arena too small for the
// working set is identical to the output under the default Error policy
// with unlimited memory — spilling changes where pages live, never what
// the job computes. Driven through testing/quick so each workload is
// checked at a few generated seeds.
func TestSpillEquivalence(t *testing.T) {
	type wl struct {
		name     string
		capacity int64 // tight: above the non-spillable floor, below the working set
		run      func(seed uint64) func(e *MimirEngine) (string, StageStats, error)
	}
	workloads := []wl{
		{
			// ~5 MB of KV data through a 1 MiB node arena. The convert
			// index and KMV record headers (one entry per distinct word per
			// rank, ~700 KiB for the full 8192-word vocabulary) are the
			// non-spillable floor.
			name:     "WC",
			capacity: 1 << 20,
			run: func(seed uint64) func(e *MimirEngine) (string, StageStats, error) {
				return func(e *MimirEngine) (string, StageStats, error) {
					res, err := RunWordCount(e, nil, WCConfig{
						Dist: Uniform, TotalBytes: 2 << 20, Seed: seed,
					}, StageOpts{Hint: WCHint()})
					return fmt.Sprintf("u=%d n=%d", res.UniqueWords, res.TotalWords), res.Stats, err
				}
			},
		},
		{
			// The resident points (24 B each) are the floor; each level's
			// octant KVs are the spillable traffic.
			name:     "OC",
			capacity: 768 << 10,
			run: func(seed uint64) func(e *MimirEngine) (string, StageStats, error) {
				return func(e *MimirEngine) (string, StageStats, error) {
					res, err := RunOctree(e, nil, OCConfig{
						TotalPoints: 20000, Seed: seed, Density: 0.01,
					}, StageOpts{Hint: OCHint()})
					return fmt.Sprintf("l=%d d=%d td=%d", res.Levels, res.DenseOctants, res.TotalDense), res.Stats, err
				}
			},
		},
		{
			// The adjacency (non-spillable application state) is the floor;
			// the edge-distribution stage's KVs are the spillable traffic.
			name:     "BFS",
			capacity: 448 << 10,
			run: func(seed uint64) func(e *MimirEngine) (string, StageStats, error) {
				return func(e *MimirEngine) (string, StageStats, error) {
					res, err := RunBFS(e, nil, BFSConfig{
						Scale: 10, EdgeFactor: 16, Seed: seed, Root: seed % 1024, Validate: true,
					}, StageOpts{Hint: BFSHint()}, MultiRound{})
					return fmt.Sprintf("v=%d depth=%d", res.Visited, res.Depth), res.Stats, err
				}
			},
		},
	}
	for _, w := range workloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			spilledOnce := false
			property := func(seedByte uint8) bool {
				seed := uint64(seedByte)*2654435761 + 1
				wantSum, wantStats := spillRun(t, 0, core.Error, w.run(seed))
				gotSum, gotStats := spillRun(t, w.capacity, core.SpillWhenNeeded, w.run(seed))
				if gotStats.SpilledBytes > 0 {
					spilledOnce = true
				}
				if wantStats.SpilledBytes != 0 {
					t.Errorf("seed %d: unlimited run spilled %d bytes", seed, wantStats.SpilledBytes)
				}
				if gotSum != wantSum {
					t.Errorf("seed %d: spill output %q, in-memory output %q", seed, gotSum, wantSum)
				}
				return gotSum == wantSum
			}
			if err := quick.Check(property, &quick.Config{MaxCount: 3}); err != nil {
				t.Error(err)
			}
			// The equivalence is vacuous if the tight ladder never spilled.
			if !spilledOnce {
				t.Errorf("%s: no generated seed spilled; shrink the arena", w.name)
			}
		})
	}
}
