package workloads

import (
	"fmt"

	"mimir/internal/core"
	"mimir/internal/mpi"
)

// This file is the shared driver for iterative (multi-round) jobs — BFS,
// PageRank, k-means. Each round runs one MapReduce stage (or more) through
// the engine, then the ranks take a collective convergence vote: every rank
// contributes an int64 (frontier size, fixed-point residual, centroid
// movement), the votes are summed with one AllreduceInt64 — the round
// barrier — and the job stops once the global sum falls to the configured
// threshold. Because the vote rides the same deterministic collectives as
// the data, every rank agrees on the round count without any extra
// coordination, on every transport.
//
// Checkpoint cadence: a multi-round job cannot reuse one checkpoint name
// across rounds (the second round would restore the first round's shuffle),
// so MultiRound derives a per-round name "<base>.r<N>" and threads it
// through StageOpts. A re-run then restores round after round, recomputing
// votes from the restored post-shuffle data, and terminates after the same
// number of rounds — which is what lets the elastic machinery repartition
// every round's checkpoint onto a new world size mid-iteration.

// MultiRound configures the shared round driver.
type MultiRound struct {
	// MaxRounds caps the iteration (0 = unbounded; the convergence vote is
	// then the only exit).
	MaxRounds int
	// Threshold is the convergence bound: the job stops after the first
	// round whose global vote sum is <= Threshold (default 0, i.e. stop
	// when no rank has work left).
	Threshold int64
	// Checkpoint, when set, is the job's base checkpoint: round N's stage
	// checkpoints under "<Name>.r<N>" (see RoundCheckpoint). Any Checkpoint
	// already present in the StageOpts passed to RunRounds is ignored — a
	// single shared name across rounds would be wrong.
	Checkpoint *core.Checkpoint
	// CheckpointEvery thins the cadence: only rounds divisible by it write
	// (or restore) a checkpoint; the rounds in between always recompute
	// (<= 1 checkpoints every round). Restores still reproduce the original
	// run because each round's input is state rebuilt from the prior round.
	CheckpointEvery int
	// OnRound is called on every rank at the top of each round, before the
	// round's stage. It is the fault-injection seam: the job service's
	// scripted mid-iteration crash (Spec.CrashRound) lives here.
	OnRound func(round int) error
}

// RoundFunc runs one round's stage(s) with the per-round StageOpts (the
// round's checkpoint already threaded in) and returns this rank's
// convergence vote plus the round's stage stats.
type RoundFunc func(round int, opts StageOpts) (vote int64, stats StageStats, err error)

// RoundResult summarizes a multi-round run on this rank.
type RoundResult struct {
	// Rounds is the number of rounds executed (identical on every rank).
	Rounds int
	// Converged reports whether the vote reached the threshold (as opposed
	// to hitting MaxRounds).
	Converged bool
	// LastVote is the final round's global vote sum.
	LastVote int64
	Stats    StageStats
}

// RoundCheckpoint derives round N's checkpoint from a job's base checkpoint
// (nil in, nil out). Resize paths repartition each round's checkpoint under
// the same naming rule.
func RoundCheckpoint(ck *core.Checkpoint, round int) *core.Checkpoint {
	if ck == nil {
		return nil
	}
	return &core.Checkpoint{FS: ck.FS, Name: fmt.Sprintf("%s.r%d", ck.Name, round)}
}

// NamedCheckpoint derives a phase checkpoint ("<base>.<suffix>") from a
// job's base checkpoint — used for one-off stages outside the round loop,
// like PageRank's adjacency build.
func NamedCheckpoint(ck *core.Checkpoint, suffix string) *core.Checkpoint {
	if ck == nil {
		return nil
	}
	return &core.Checkpoint{FS: ck.FS, Name: fmt.Sprintf("%s.%s", ck.Name, suffix)}
}

// RunRounds drives fn round by round until the convergence vote reaches
// mr.Threshold or MaxRounds is hit. All ranks of e's communicator must call
// it with the same configuration; the vote allreduce is the per-round
// barrier that keeps them in lockstep.
func RunRounds(e Engine, opts StageOpts, mr MultiRound, fn RoundFunc) (RoundResult, error) {
	comm := e.Comm()
	every := mr.CheckpointEvery
	if every <= 1 {
		every = 1
	}
	var res RoundResult
	for round := 0; mr.MaxRounds <= 0 || round < mr.MaxRounds; round++ {
		if mr.OnRound != nil {
			if err := mr.OnRound(round); err != nil {
				return res, err
			}
		}
		ropts := opts
		ropts.Checkpoint = nil
		if mr.Checkpoint != nil && round%every == 0 {
			ropts.Checkpoint = RoundCheckpoint(mr.Checkpoint, round)
		}
		vote, stats, err := fn(round, ropts)
		if err != nil {
			return res, err
		}
		res.Stats.accumulate(stats)
		res.Rounds++
		total, err := comm.AllreduceInt64([]int64{vote}, mpi.OpSum)
		if err != nil {
			return res, err
		}
		res.LastVote = total[0]
		if total[0] <= mr.Threshold {
			res.Converged = true
			break
		}
	}
	return res, nil
}
