package workloads

// R-MAT / Kronecker graph generation in the style of the Graph500 reference
// generator: scale-free graphs whose edge distribution follows a power law,
// with the standard partition probabilities A=0.57, B=0.19, C=0.19, D=0.05
// and edgefactor 16 (so the average degree counting both directions is 32,
// as the paper states).

const (
	rmatA = 0.57
	rmatB = 0.19
	rmatC = 0.19
	// DefaultEdgeFactor is the Graph500 edgefactor: edges = EdgeFactor * 2^scale.
	DefaultEdgeFactor = 16
)

// rmatEdge samples one directed edge in a 2^scale vertex graph.
func rmatEdge(r *rng, scale int) (u, v uint64) {
	for bit := 0; bit < scale; bit++ {
		p := r.float64()
		switch {
		case p < rmatA:
			// top-left: no bits set
		case p < rmatA+rmatB:
			v |= 1 << uint(bit)
		case p < rmatA+rmatB+rmatC:
			u |= 1 << uint(bit)
		default:
			u |= 1 << uint(bit)
			v |= 1 << uint(bit)
		}
	}
	return u, v
}

// genEdges deterministically generates this rank's share of the edge list
// of an R-MAT graph with 2^scale vertices and edgeFactor*2^scale edges.
func genEdges(seed uint64, scale, edgeFactor, rank, nranks int) [][2]uint64 {
	total := int64(edgeFactor) << uint(scale)
	share := total / int64(nranks)
	if int64(rank) < total%int64(nranks) {
		share++
	}
	r := newRNG(seed + uint64(rank)*0xD1B54A32D192ED03)
	edges := make([][2]uint64, share)
	for i := range edges {
		u, v := rmatEdge(r, scale)
		edges[i] = [2]uint64{u, v}
	}
	return edges
}
