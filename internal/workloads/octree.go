package workloads

import (
	"encoding/binary"
	"fmt"

	"mimir/internal/core"
	"mimir/internal/kvbuf"
	"mimir/internal/pfs"
)

// OC is the paper's octree clustering benchmark: the MapReduce algorithm of
// Estrada et al. for classifying 3D points (ligand docking metadata). The
// space is recursively subdivided into octants; at each level a MapReduce
// stage counts the points per octant, and octants holding at least a
// density threshold of the total points stay "dense" and are subdivided at
// the next level. The iteration stops when no octant is dense or the
// maximum depth is reached. Per the paper's dataset, points follow a normal
// distribution (sigma 0.5) and the density threshold is 1%.

// OCConfig describes one octree clustering run.
type OCConfig struct {
	// TotalPoints across all ranks (the paper sweeps 2^22..2^32).
	TotalPoints int64
	Seed        uint64
	// Density is the dense-octant threshold as a fraction of total points
	// (paper: 0.01).
	Density float64
	// MaxLevel caps the refinement depth (default 8).
	MaxLevel int
}

// OCResult summarizes a run.
type OCResult struct {
	// Levels actually refined.
	Levels int
	// DenseOctants found at the deepest refined level.
	DenseOctants int
	// TotalDense across all levels.
	TotalDense int
	Stats      StageStats
}

// OCHint is the octree KV-hint: fixed 8-byte octant keys and 8-byte counts.
func OCHint() kvbuf.Hint { return kvbuf.Hint{Key: kvbuf.Fixed(8), Val: kvbuf.Fixed(8)} }

// pointBytes is the accounting charge for one resident 3D point.
const pointBytes = 24

// octKey packs an octant address: level in the top byte, then 3x18 bits of
// grid coordinates.
func octKey(level int, x, y, z float64) uint64 {
	shift := uint(level)
	ix := uint64(clamp01(x) * float64(uint64(1)<<shift))
	iy := uint64(clamp01(y) * float64(uint64(1)<<shift))
	iz := uint64(clamp01(z) * float64(uint64(1)<<shift))
	mask := uint64(1)<<shift - 1
	return uint64(level)<<56 | (ix&mask)<<36 | (iy&mask)<<18 | (iz & mask)
}

// parentKey returns the enclosing octant of k at the previous level.
func parentKey(k uint64) uint64 {
	level := int(k >> 56)
	if level <= 1 {
		return 0
	}
	ix := (k >> 36) & (1<<18 - 1)
	iy := (k >> 18) & (1<<18 - 1)
	iz := k & (1<<18 - 1)
	return uint64(level-1)<<56 | (ix>>1)<<36 | (iy>>1)<<18 | iz>>1
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return 0.999999999
	}
	return v
}

// genPoints deterministically generates this rank's share of the dataset:
// 3D points with normally distributed coordinates (mean 0.5, sigma 0.5,
// clamped to the unit cube) as described for the paper's dataset.
func genPoints(seed uint64, total int64, rank, nranks int) [][3]float64 {
	share := total / int64(nranks)
	if int64(rank) < total%int64(nranks) {
		share++
	}
	r := newRNG(seed + uint64(rank)*0xA24BAED4963EE407)
	pts := make([][3]float64, share)
	for i := range pts {
		pts[i] = [3]float64{
			clamp01(0.5 + 0.5*r.normal()),
			clamp01(0.5 + 0.5*r.normal()),
			clamp01(0.5 + 0.5*r.normal()),
		}
	}
	return pts
}

// RunOctree executes OC on the given engine: one MapReduce stage per level.
func RunOctree(e Engine, fs *pfs.FS, cfg OCConfig, opts StageOpts) (OCResult, error) {
	comm := e.Comm()
	if cfg.Density <= 0 {
		cfg.Density = 0.01
	}
	if cfg.MaxLevel <= 0 {
		cfg.MaxLevel = 8
	}
	threshold := uint64(float64(cfg.TotalPoints) * cfg.Density)
	if threshold < 1 {
		threshold = 1
	}

	// Input: the rank's points, charged as one dataset read and kept
	// resident across iterations (charged to the node arena as application
	// data, like the ported MR-MPI application holds them).
	pts := genPoints(cfg.Seed, cfg.TotalPoints, comm.Rank(), comm.Size())
	if fs != nil {
		fs.ChargeRead(comm.Clock(), int64(len(pts))*pointBytes)
	}
	// Application-held point storage is part of the node's footprint.
	appBytes := int64(len(pts)) * pointBytes
	arena := engineArena(e)
	if arena != nil {
		if err := arena.Alloc(appBytes); err != nil {
			return OCResult{}, fmt.Errorf("workloads: holding points: %w", err)
		}
		defer arena.Free(appBytes)
	}

	var res OCResult
	// dense holds the dense octant keys of the previous level.
	dense := map[uint64]bool{}
	for level := 1; level <= cfg.MaxLevel; level++ {
		lv := level
		input := func(emit func(rec core.Record) error) error {
			var kb [8]byte
			for _, p := range pts {
				if lv > 1 && !dense[parentKey(octKey(lv, p[0], p[1], p[2]))] {
					continue
				}
				binary.LittleEndian.PutUint64(kb[:], octKey(lv, p[0], p[1], p[2]))
				if err := emit(core.Record{Val: kb[:]}); err != nil {
					return err
				}
			}
			return nil
		}
		mapFn := func(rec core.Record, emit core.Emitter) error {
			return emit.Emit(rec.Val, core.Uint64Bytes(1))
		}
		var localDense []uint64
		stats, err := e.RunStage(opts, input, mapFn, WordCountReduce, func(k, v []byte) error {
			if core.BytesUint64(v) >= threshold {
				localDense = append(localDense, binary.LittleEndian.Uint64(k))
			}
			return nil
		})
		if err != nil {
			return res, err
		}
		res.Stats.accumulate(stats)

		// Share this level's dense octants with every rank.
		buf := make([]byte, 8*len(localDense))
		for i, k := range localDense {
			binary.LittleEndian.PutUint64(buf[i*8:], k)
		}
		all, err := comm.Allgatherv(buf)
		if err != nil {
			return res, err
		}
		dense = map[uint64]bool{}
		for _, b := range all {
			for off := 0; off+8 <= len(b); off += 8 {
				dense[binary.LittleEndian.Uint64(b[off:])] = true
			}
		}
		res.Levels = level
		res.DenseOctants = len(dense)
		res.TotalDense += len(dense)
		if len(dense) == 0 {
			break
		}
	}
	return res, nil
}

// engineArena exposes the arena of the known engine types for application
// data accounting.
func engineArena(e Engine) arenaHolder {
	switch t := e.(type) {
	case *MimirEngine:
		return t.arena
	case *MRMPIEngine:
		return t.arena
	}
	return nil
}

type arenaHolder interface {
	Alloc(n int64) error
	Free(n int64)
}
