package workloads

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mimir/internal/core"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/partition"
)

// mrcWorld runs fn on every rank of a fresh in-process world with an
// unlimited shared arena.
func mrcWorld(t *testing.T, size int, fn func(c *mpi.Comm, e *MimirEngine) error) {
	t.Helper()
	w := mpi.NewWorld(mpi.Config{Size: size, Net: testNet()})
	arena := mem.NewArena(0)
	err := w.Run(func(c *mpi.Comm) error {
		e := NewMimirEngine(c, arena)
		e.PageSize = 1 << 10
		e.CommBuf = 8 << 10
		return fn(c, e)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTeraSortOracle runs the sort at several sizes and row counts and
// feeds every rank's block to the linear verifier: global order, boundary
// disjointness, and input-multiset equality.
func TestTeraSortOracle(t *testing.T) {
	for _, tc := range []struct {
		ranks int
		rows  int64
	}{{1, 256}, {4, 2048}, {4, 3}, {4, 0}, {8, 1000}} {
		t.Run(fmt.Sprintf("r%d_n%d", tc.ranks, tc.rows), func(t *testing.T) {
			cfg := TeraSortConfig{Rows: tc.rows, Seed: 7}
			blocks := make([][]byte, tc.ranks)
			var mu sync.Mutex
			mrcWorld(t, tc.ranks, func(c *mpi.Comm, e *MimirEngine) error {
				var blk []byte
				res, err := RunTeraSort(e, nil, cfg, StageOpts{Hint: TeraSortHint(cfg)},
					func(k, v []byte) error {
						blk = append(append(blk, k...), v...)
						return nil
					})
				if err != nil {
					return err
				}
				if res.Rounds != 1 {
					return fmt.Errorf("terasort reported %d rounds", res.Rounds)
				}
				mu.Lock()
				blocks[c.Rank()] = blk
				mu.Unlock()
				return nil
			})
			if err := VerifyTeraSort(cfg, blocks); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTeraSortVerifierCatches sabotages a correct run three ways and
// checks the oracle rejects each.
func TestTeraSortVerifierCatches(t *testing.T) {
	cfg := TeraSortConfig{Rows: 64, Seed: 3}
	rowLen := DefaultTeraKeyBytes + DefaultTeraValBytes
	var rows [][]byte
	for i := int64(0); i < cfg.Rows; i++ {
		row := make([]byte, rowLen)
		teraRow(cfg.Seed, i, row[:DefaultTeraKeyBytes], row[DefaultTeraKeyBytes:])
		rows = append(rows, row)
	}
	sorted := func() []byte {
		all := append([][]byte(nil), rows...)
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if bytes.Compare(all[j], all[i]) < 0 {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		return bytes.Join(all, nil)
	}()
	if err := VerifyTeraSort(cfg, [][]byte{sorted}); err != nil {
		t.Fatalf("clean run rejected: %v", err)
	}
	// Swap two rows: order violation.
	bad := append([]byte(nil), sorted...)
	copy(bad[0:rowLen], sorted[rowLen:2*rowLen])
	copy(bad[rowLen:2*rowLen], sorted[0:rowLen])
	if err := VerifyTeraSort(cfg, [][]byte{bad}); err == nil {
		t.Fatal("order violation not caught")
	}
	// Drop a row: multiset violation.
	if err := VerifyTeraSort(cfg, [][]byte{sorted[rowLen:]}); err == nil {
		t.Fatal("missing row not caught")
	}
	// Duplicate a key across a block boundary: splitter violation.
	split := len(sorted) / rowLen / 2 * rowLen
	b0 := append([]byte(nil), sorted[:split+rowLen]...)
	if err := VerifyTeraSort(cfg, [][]byte{b0, sorted[split:]}); err == nil {
		t.Fatal("boundary straddle not caught")
	}
}

// TestPageRankConverges checks the iteration terminates by residual (not
// the round cap), conserves total probability mass to within the known
// truncation leak, and is invariant to worker count and partial reduction.
func TestPageRankConverges(t *testing.T) {
	cfg := PageRankConfig{Scale: 7, Seed: 11}
	type run struct {
		rounds int
		scores string
	}
	do := func(workers int, pr bool) run {
		var mu sync.Mutex
		var b bytes.Buffer
		var rounds int
		mrcWorld(t, 4, func(c *mpi.Comm, e *MimirEngine) error {
			e.Workers = workers
			opts := StageOpts{Hint: PageRankHint()}
			if pr {
				opts.PartialReduce = Int64VecAdd
			}
			var local bytes.Buffer
			res, err := RunPageRank(e, nil, cfg, opts, MultiRound{}, func(v uint64, s int64) error {
				fmt.Fprintf(&local, "%d %d\n", v, s)
				return nil
			})
			if err != nil {
				return err
			}
			if !res.Converged {
				return fmt.Errorf("rank %d: did not converge in %d rounds (residual %d)",
					c.Rank(), res.Rounds, res.Residual)
			}
			mu.Lock()
			rounds = res.Rounds
			b.Write(local.Bytes()) // unordered across ranks; content-compare via sums
			mu.Unlock()
			return nil
		})
		return run{rounds, canonicalLines(b.Bytes())}
	}
	base := do(1, false)
	if base.rounds < 3 {
		t.Fatalf("suspiciously fast convergence: %d rounds", base.rounds)
	}
	// Mass conservation (up to the deterministic dangling truncation leak).
	var mass int64
	for _, line := range bytes.Split([]byte(base.scores), []byte{'\n'}) {
		var v uint64
		var s int64
		if len(line) == 0 {
			continue
		}
		fmt.Sscanf(string(line), "%d %d", &v, &s)
		mass += s
	}
	n := int64(1) << 7
	want := n * PageRankOne
	if mass < want*9/10 || mass > want*11/10 {
		t.Fatalf("total mass %d far from %d", mass, want)
	}
	for _, alt := range []run{do(4, false), do(1, true), do(8, true)} {
		if alt.rounds != base.rounds || alt.scores != base.scores {
			t.Fatalf("pagerank output varies with workers/PR (%d vs %d rounds)", alt.rounds, base.rounds)
		}
	}
}

// canonicalLines sorts newline-separated lines for order-independent
// comparison.
func canonicalLines(b []byte) string {
	lines := bytes.Split(b, []byte{'\n'})
	for i := range lines {
		for j := i + 1; j < len(lines); j++ {
			if bytes.Compare(lines[j], lines[i]) < 0 {
				lines[i], lines[j] = lines[j], lines[i]
			}
		}
	}
	return string(bytes.Join(lines, []byte{'\n'}))
}

// TestKMeansConverges checks convergence, that every point is accounted
// for, and invariance to workers and the sampling partitioner (whose
// hot-key split engages on K hot centroid keys when PR is commutative).
func TestKMeansConverges(t *testing.T) {
	cfg := KMeansConfig{Points: 2000, K: 4, Dims: 2, Seed: 9}
	do := func(workers int, pr bool, partName string) KMeansResult {
		var res KMeansResult
		mrcWorld(t, 4, func(c *mpi.Comm, e *MimirEngine) error {
			e.Workers = workers
			if partName != "" {
				p, err := partition.ByName(partName)
				if err != nil {
					return err
				}
				e.Partitioner = p
			}
			opts := StageOpts{Hint: KMeansHint(cfg)}
			if pr {
				opts.PartialReduce = Int64VecAdd
			}
			r, err := RunKMeans(e, nil, cfg, opts, MultiRound{})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				res = r
			}
			return nil
		})
		return res
	}
	base := do(1, false, "")
	if !base.Converged {
		t.Fatalf("did not converge in %d rounds (movement %d)", base.Rounds, base.Movement)
	}
	if base.Rounds < 2 {
		t.Fatalf("suspiciously fast convergence: %d rounds", base.Rounds)
	}
	var n int64
	for _, c := range base.Counts {
		n += c
	}
	if n != cfg.Points {
		t.Fatalf("final assignment covers %d of %d points", n, cfg.Points)
	}
	for _, alt := range []KMeansResult{do(4, true, ""), do(8, true, "sample"), do(1, false, "sample")} {
		if alt.Rounds != base.Rounds || fmt.Sprint(alt.Centroids) != fmt.Sprint(base.Centroids) ||
			fmt.Sprint(alt.Counts) != fmt.Sprint(base.Counts) {
			t.Fatalf("kmeans table varies with workers/PR/partitioner:\n%v\n%v", alt, base)
		}
	}
}

// TestRunRoundsCheckpointCadence pins the naming rule and the thinned
// cadence: with CheckpointEvery=2 only even rounds carry a checkpoint.
func TestRunRoundsCheckpointCadence(t *testing.T) {
	base := &core.Checkpoint{Name: "job7"}
	var seen []string
	mrcWorld(t, 1, func(c *mpi.Comm, e *MimirEngine) error {
		_, err := RunRounds(e, StageOpts{}, MultiRound{
			MaxRounds:       5,
			Checkpoint:      base,
			CheckpointEvery: 2,
		}, func(round int, opts StageOpts) (int64, StageStats, error) {
			name := "-"
			if opts.Checkpoint != nil {
				name = opts.Checkpoint.Name
			}
			seen = append(seen, name)
			return 1, StageStats{}, nil // never converges; MaxRounds stops it
		})
		return err
	})
	want := fmt.Sprint([]string{"job7.r0", "-", "job7.r2", "-", "job7.r4"})
	if fmt.Sprint(seen) != want {
		t.Fatalf("cadence %v, want %v", seen, want)
	}
}

// TestRunRoundsThreshold: votes below the threshold end the loop and are
// reported as convergence; MaxRounds exhaustion is not.
func TestRunRoundsThreshold(t *testing.T) {
	votes := []int64{100, 40, 9}
	mrcWorld(t, 1, func(c *mpi.Comm, e *MimirEngine) error {
		res, err := RunRounds(e, StageOpts{}, MultiRound{MaxRounds: 10, Threshold: 10},
			func(round int, _ StageOpts) (int64, StageStats, error) {
				return votes[round], StageStats{}, nil
			})
		if err != nil {
			return err
		}
		if !res.Converged || res.Rounds != 3 || res.LastVote != 9 {
			return fmt.Errorf("got %+v", res)
		}
		capped, err := RunRounds(e, StageOpts{}, MultiRound{MaxRounds: 2},
			func(round int, _ StageOpts) (int64, StageStats, error) {
				return 1, StageStats{}, nil
			})
		if err != nil {
			return err
		}
		if capped.Converged || capped.Rounds != 2 {
			return fmt.Errorf("got %+v", capped)
		}
		return nil
	})
}

// TestBFSParents: the refactored BFS exposes its parents partition, owned
// by key hash and rooted correctly.
func TestBFSParents(t *testing.T) {
	cfg := BFSConfig{Scale: 7, Seed: 5, Root: 3, Validate: true}
	var total int64
	var mu sync.Mutex
	mrcWorld(t, 4, func(c *mpi.Comm, e *MimirEngine) error {
		res, err := RunBFS(e, nil, cfg, StageOpts{Hint: BFSHint()}, MultiRound{})
		if err != nil {
			return err
		}
		for v := range res.Parents {
			if vertexOwner(v, c.Size()) != c.Rank() {
				return fmt.Errorf("rank %d holds parent entry for foreign vertex %d", c.Rank(), v)
			}
		}
		mu.Lock()
		total += int64(len(res.Parents))
		mu.Unlock()
		if own := vertexOwner(cfg.Root, c.Size()); own == c.Rank() {
			if res.Parents[cfg.Root] != cfg.Root {
				return fmt.Errorf("root parent %d", res.Parents[cfg.Root])
			}
		}
		if res.Visited == 0 {
			return fmt.Errorf("nothing visited")
		}
		mu.Lock()
		defer mu.Unlock()
		return nil
	})
	// Every visited vertex appears exactly once across ranks.
	var visited int64
	mrcWorld(t, 4, func(c *mpi.Comm, e *MimirEngine) error {
		res, err := RunBFS(e, nil, cfg, StageOpts{}, MultiRound{})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			visited = res.Visited
		}
		return nil
	})
	if total != visited {
		t.Fatalf("parents entries %d != visited %d", total, visited)
	}
}
