// Package workloads implements the paper's three benchmarks — WordCount
// (WC), octree clustering (OC), and breadth-first search (BFS) — together
// with deterministic synthetic dataset generators standing in for the
// paper's inputs: a uniform word stream, a Zipf-skewed "Wikipedia-like"
// word stream (PUMA), normally distributed 3D points (protein-ligand
// docking metadata), and Graph500-style R-MAT graphs. Each benchmark runs
// unchanged on both engines through the Engine interface.
package workloads

import "math"

// rng is a small deterministic splitmix64 generator. We roll our own so
// datasets are bit-identical across Go releases (math/rand's streams are
// not guaranteed stable), which the tests and experiment tables rely on.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9E3779B97F4A7C15} }

// mix64 is the splitmix64 finalizer as a pure function: a bijective avalanche
// mix used to derive independent stream seeds from structured coordinates
// (seed, rank, record). Without it, nearby coordinates yield correlated
// states (the weakness the graphgen shared-seed bug exposed).
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// streamFor derives an independent RNG stream for one (rank, record)
// coordinate of a dataset. Because the stream depends only on the logical
// record index — not on which worker or how many workers generate it — any
// sharding of the record space reproduces identical content, making
// Workers>1 runs byte-identical to serial ones.
func streamFor(seed uint64, rank int, record int64) *rng {
	h := mix64(seed + 0x9E3779B97F4A7C15)
	h = mix64(h ^ mix64(uint64(rank)+0xD1B54A32D192ED03))
	h = mix64(h ^ mix64(uint64(record)+0x8CB92BA72F3D8DD7))
	return &rng{state: h}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("workloads: intn with non-positive bound")
	}
	return int(r.next() % uint64(n))
}

// float64 returns a uniform float in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// normal returns a standard normal sample via Box-Muller.
func (r *rng) normal() float64 {
	u1 := r.float64()
	for u1 == 0 {
		u1 = r.float64()
	}
	u2 := r.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// zipf samples a rank from a Zipf distribution with exponent s > 1 over an
// unbounded support, using Devroye's rejection method, clamped to [1, imax].
// Small ranks (popular words) dominate, giving the heavy key skew of the
// Wikipedia dataset.
type zipf struct {
	r          *rng
	s          float64
	imax       float64
	oneMinusS  float64
	hImax      float64
	hX0        float64
	sConstant  float64
	halfPowerS float64
}

func newZipf(r *rng, s float64, imax uint64) *zipf {
	z := &zipf{r: r, s: s, imax: float64(imax), oneMinusS: 1 - s}
	z.hImax = z.h(z.imax + 0.5)
	z.hX0 = z.h(0.5) - math.Exp(-s*math.Log(1))
	z.sConstant = z.hX0 - z.hImax
	z.halfPowerS = math.Exp(-s * math.Log(1.5))
	return z
}

// h is the integral of x^-s: x^(1-s)/(1-s).
func (z *zipf) h(x float64) float64 {
	return math.Exp(z.oneMinusS*math.Log(x)) / z.oneMinusS
}

func (z *zipf) hInv(x float64) float64 {
	return math.Exp(math.Log(z.oneMinusS*x) / z.oneMinusS)
}

// sample returns a Zipf-distributed rank in [1, imax].
func (z *zipf) sample() uint64 {
	for {
		u := z.r.float64()
		x := z.hInv(z.hX0 - u*z.sConstant)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > z.imax {
			k = z.imax
		}
		// Acceptance test (Devroye).
		if z.h(k+0.5)-math.Exp(-z.s*math.Log(k)) <= z.hX0-u*z.sConstant {
			return uint64(k)
		}
	}
}
