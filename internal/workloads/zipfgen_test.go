package workloads

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mimir/internal/core"
	"mimir/internal/mem"
	"mimir/internal/mpi"
)

func TestStreamForIndependence(t *testing.T) {
	// Streams at nearby coordinates must be decorrelated and reproducible.
	a1, a2 := streamFor(1, 0, 0), streamFor(1, 0, 0)
	for i := 0; i < 32; i++ {
		if a1.next() != a2.next() {
			t.Fatal("streamFor not deterministic")
		}
	}
	seen := map[uint64]string{}
	for rank := 0; rank < 4; rank++ {
		for rec := int64(0); rec < 64; rec++ {
			v := streamFor(1, rank, rec).next()
			if at, dup := seen[v]; dup {
				t.Fatalf("stream (%d,%d) collides with %s", rank, rec, at)
			}
			seen[v] = fmt.Sprintf("(%d,%d)", rank, rec)
		}
	}
}

func TestZipfTableShape(t *testing.T) {
	r := newRNG(5)
	const n = 100000
	// s=1.1: heavy head — id 0 far more popular than id 100.
	tb := newZipfTable(1.1, 1024)
	counts := make([]int, 1024)
	for i := 0; i < n; i++ {
		counts[tb.sample(r)]++
	}
	if counts[0] < 10*counts[100] {
		t.Errorf("s=1.1 skew too weak: count(0)=%d count(100)=%d", counts[0], counts[100])
	}
	// s=0: uniform — no id holds more than 3x its fair share.
	tb = newZipfTable(0, 256)
	counts = make([]int, 256)
	for i := 0; i < n; i++ {
		counts[tb.sample(r)]++
	}
	for id, c := range counts {
		if c > 3*n/256 {
			t.Errorf("s=0 id %d holds %d of %d (not uniform)", id, c, n)
		}
	}
}

func TestZipfContentionDivertsMass(t *testing.T) {
	// contention=0.5 must put at least half the words on id 0's word, even
	// at zero skew.
	in := ZipfTextInput(nil, nil, ZipfConfig{Skew: 0, Vocab: 1024, Contention: 0.5}, 9, 64<<10, 0, 1)
	hot := string(wordFor(nil, 0, Wikipedia))
	var total, hotN int
	err := in(func(rec core.Record) error {
		for _, w := range bytes.Fields(rec.Val) {
			total++
			if string(w) == hot {
				hotN++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(hotN) / float64(total); frac < 0.45 || frac > 0.65 {
		t.Errorf("hot word holds %.2f of words, want ~0.5+", frac)
	}
}

func TestZipfInputDeterministicAndRankDisjoint(t *testing.T) {
	gen := func(rank int) []byte {
		var out []byte
		in := ZipfTextInput(nil, nil, ZipfConfig{Skew: 1.1}, 7, 32<<10, rank, 4)
		if err := in(func(rec core.Record) error {
			out = append(out, rec.Val...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !bytes.Equal(gen(0), gen(0)) {
		t.Fatal("same (seed, rank) produced different bytes")
	}
	if bytes.Equal(gen(0), gen(1)) {
		t.Fatal("different ranks produced identical bytes")
	}
}

func TestZipfWorkersReproducible(t *testing.T) {
	// The satellite regression: per-record RNG streams make Workers>1 runs
	// byte-identical to serial — merged WordCount output must match exactly
	// between Workers 1 and 8.
	run := func(workers int) map[string]uint64 {
		const p = 4
		w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
		arena := mem.NewArena(0)
		var mu sync.Mutex
		got := map[string]uint64{}
		err := w.Run(func(c *mpi.Comm) error {
			eng := NewMimirEngine(c, arena)
			eng.Workers = workers
			input := ZipfTextInput(nil, c.Clock(), ZipfConfig{Skew: 1.1, Contention: 0.1},
				11, 64<<10, c.Rank(), c.Size())
			_, err := eng.RunStage(StageOpts{Hint: WCHint()}, input, WordCountMap, WordCountReduce,
				func(k, v []byte) error {
					mu.Lock()
					defer mu.Unlock()
					got[string(k)] += core.BytesUint64(v)
					return nil
				})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	serial := run(1)
	parallel := run(8)
	if len(serial) == 0 {
		t.Fatal("no output")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("unique words differ: %d vs %d", len(serial), len(parallel))
	}
	for k, v := range serial {
		if parallel[k] != v {
			t.Fatalf("word %q: %d serial vs %d at 8 workers", k, v, parallel[k])
		}
	}
}
