package workloads

import (
	"mimir/internal/core"
	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/metrics"
	"mimir/internal/mpi"
	"mimir/internal/mrmpi"
	"mimir/internal/partition"
	"mimir/internal/pfs"
	"mimir/internal/spill"
)

// StageOpts selects the optimizations for one MapReduce stage. The Mimir
// engine honors all of them; the MR-MPI engine supports only Combiner (its
// compress call) and silently has no KV-hint or partial reduction, exactly
// like the original library.
type StageOpts struct {
	// Hint is the KV-hint encoding (Mimir only).
	Hint kvbuf.Hint
	// Combiner enables KV compression for the stage.
	Combiner core.CombineFunc
	// PartialReduce replaces convert+reduce (Mimir only).
	PartialReduce core.CombineFunc
	// Checkpoint enables post-shuffle checkpointing / restore for the stage
	// (Mimir only; see core.Config.Checkpoint).
	Checkpoint *core.Checkpoint
}

// StageStats aggregates one rank's counters for one stage.
type StageStats struct {
	ShuffledBytes int64
	// SpilledBytes is the rank's out-of-core write traffic: MR-MPI page
	// spills, or Mimir container pages evicted under an OutOfCore policy.
	SpilledBytes int64
	MapOutKVs    int64
	MapOutBytes  int64
	OutputKVs    int64
	// OverlapRounds / OverlapSavedSec report how often the overlapped
	// aggregate hid communication behind the map and how much simulated
	// time that saved (Mimir only; zero with SerialAggregate).
	OverlapRounds   int64
	OverlapSavedSec float64
	// Out-of-core detail (Mimir spill policies only): pages evicted and
	// restored, scan-readahead hits, and the simulated seconds spent on
	// spill I/O.
	SpillEvictions    int64
	SpillRestores     int64
	SpillRestoredByte int64
	SpillPrefetchHits int64
	SpillIOSec        float64
	// Phase times in simulated seconds (map / aggregate / convert+reduce).
	MapTime, AggrTime, ConvertTime, ReduceTime float64
	// Workers is the rank's worker-pool size and ParEff* its per-phase
	// parallel efficiency, sum-over-workers / (Workers x max-over-workers)
	// of the sharded compute (Mimir only; 1.0 when serial or idle).
	Workers                                            int
	ParEffMap, ParEffAggr, ParEffConvert, ParEffReduce float64
}

// accumulate folds another stage's stats into s (for iterative workloads).
func (s *StageStats) accumulate(o StageStats) {
	s.ShuffledBytes += o.ShuffledBytes
	s.SpilledBytes += o.SpilledBytes
	s.MapOutKVs += o.MapOutKVs
	s.MapOutBytes += o.MapOutBytes
	s.OutputKVs += o.OutputKVs
	s.OverlapRounds += o.OverlapRounds
	s.OverlapSavedSec += o.OverlapSavedSec
	s.SpillEvictions += o.SpillEvictions
	s.SpillRestores += o.SpillRestores
	s.SpillRestoredByte += o.SpillRestoredByte
	s.SpillPrefetchHits += o.SpillPrefetchHits
	s.SpillIOSec += o.SpillIOSec
	s.MapTime += o.MapTime
	s.AggrTime += o.AggrTime
	s.ConvertTime += o.ConvertTime
	s.ReduceTime += o.ReduceTime
	// Pool size is a configuration, not a counter; efficiencies keep the
	// worst stage seen so iterative jobs report their bottleneck.
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	minEff := func(dst *float64, v float64) {
		if v > 0 && (*dst == 0 || v < *dst) {
			*dst = v
		}
	}
	minEff(&s.ParEffMap, o.ParEffMap)
	minEff(&s.ParEffAggr, o.ParEffAggr)
	minEff(&s.ParEffConvert, o.ParEffConvert)
	minEff(&s.ParEffReduce, o.ParEffReduce)
}

// Record adds the stage's counters as one rank's samples to a metrics
// summary, so the min/mean/max view exposes rank imbalance in shuffle and
// spill traffic the same way it does for phase times.
func (s StageStats) Record(m *metrics.Summary) {
	m.Add("map-sec", s.MapTime)
	m.Add("aggregate-sec", s.AggrTime)
	m.Add("convert-sec", s.ConvertTime)
	m.Add("reduce-sec", s.ReduceTime)
	m.Add("shuffled-bytes", float64(s.ShuffledBytes))
	m.Add("spilled-bytes", float64(s.SpilledBytes))
	m.Add("spill-evictions", float64(s.SpillEvictions))
	m.Add("spill-restores", float64(s.SpillRestores))
	m.Add("spill-prefetch-hits", float64(s.SpillPrefetchHits))
	m.Add("spill-io-sec", s.SpillIOSec)
	m.Add("workers", float64(s.Workers))
	m.Add("par-eff-map", s.ParEffMap)
	m.Add("par-eff-aggregate", s.ParEffAggr)
	m.Add("par-eff-convert", s.ParEffConvert)
	m.Add("par-eff-reduce", s.ParEffReduce)
}

// Engine runs MapReduce stages on one rank. It abstracts over the Mimir and
// MR-MPI engines so every benchmark is written once — the paper's "we
// ported it to Mimir for our experiments" in reverse.
type Engine interface {
	// RunStage executes map [+ shuffle [+ reduce]] and streams the rank's
	// output KVs to sink. A nil reduceFn makes the stage map-only (output =
	// post-shuffle KVs).
	RunStage(opts StageOpts, input core.Input, mapFn core.MapFunc, reduceFn core.ReduceFunc,
		sink func(k, v []byte) error) (StageStats, error)
	// Comm returns the rank's communicator.
	Comm() *mpi.Comm
	// Name identifies the engine in experiment output.
	Name() string
}

// MimirEngine runs stages on the Mimir engine (internal/core).
type MimirEngine struct {
	comm  *mpi.Comm
	arena *mem.Arena
	// PageSize and CommBuf default to the paper's 64 MB (scaled).
	PageSize int
	CommBuf  int
	// SerialAggregate disables the overlapped aggregate (ablation knob).
	SerialAggregate bool
	// OutOfCore selects Mimir's memory-pressure policy; the spill policies
	// require SpillFS (see core.OutOfCore).
	OutOfCore core.OutOfCore
	SpillFS   *pfs.FS
	// SpillWatermark / SpillPrefetch tune the spill store (0 = defaults).
	SpillWatermark float64
	SpillPrefetch  int
	// SpillGroup coordinates eviction across ranks sharing the arena
	// (see core.Config.SpillGroup).
	SpillGroup *spill.Group
	// Workers is the rank's intra-process worker-pool size (see
	// core.Config.Workers; 0 defaults to GOMAXPROCS, 1 is serial).
	Workers int
	// Partitioner is the key→rank strategy (see core.Config.Partitioner;
	// nil is the default FNV-1a hash).
	Partitioner partition.Partitioner
	Costs       core.Costs
}

// NewMimirEngine creates a Mimir-backed engine for this rank.
func NewMimirEngine(comm *mpi.Comm, arena *mem.Arena) *MimirEngine {
	return &MimirEngine{comm: comm, arena: arena}
}

// Comm returns the rank's communicator.
func (e *MimirEngine) Comm() *mpi.Comm { return e.comm }

// Name returns "Mimir".
func (e *MimirEngine) Name() string { return "Mimir" }

// RunStage implements Engine.
func (e *MimirEngine) RunStage(opts StageOpts, input core.Input, mapFn core.MapFunc,
	reduceFn core.ReduceFunc, sink func(k, v []byte) error) (StageStats, error) {
	job := core.NewJob(e.comm, core.Config{
		Arena:           e.arena,
		PageSize:        e.PageSize,
		CommBuf:         e.CommBuf,
		Hint:            opts.Hint,
		Combiner:        opts.Combiner,
		PartialReduce:   opts.PartialReduce,
		Checkpoint:      opts.Checkpoint,
		SerialAggregate: e.SerialAggregate,
		OutOfCore:       e.OutOfCore,
		SpillFS:         e.SpillFS,
		SpillWatermark:  e.SpillWatermark,
		SpillPrefetch:   e.SpillPrefetch,
		SpillGroup:      e.SpillGroup,
		Workers:         e.Workers,
		Partitioner:     e.Partitioner,
		Costs:           e.Costs,
	})
	out, err := job.Run(input, mapFn, reduceFn)
	if err != nil {
		return StageStats{}, err
	}
	defer out.Free()
	if sink != nil {
		if err := out.Scan(sink); err != nil {
			return StageStats{}, err
		}
	}
	s := out.Stats
	return StageStats{
		ShuffledBytes:     s.ShuffledBytes,
		SpilledBytes:      s.Spill.SpilledBytes,
		MapOutKVs:         s.MapOutKVs,
		MapOutBytes:       s.MapOutBytes,
		OutputKVs:         s.OutputKVs,
		OverlapRounds:     int64(s.OverlapRounds),
		OverlapSavedSec:   s.OverlapSavedSec,
		SpillEvictions:    s.Spill.Evictions,
		SpillRestores:     s.Spill.Restores,
		SpillRestoredByte: s.Spill.RestoredBytes,
		SpillPrefetchHits: s.Spill.PrefetchHits,
		SpillIOSec:        s.Spill.IOSec,
		MapTime:           s.Phases.Map,
		AggrTime:          s.Phases.Aggregate,
		ConvertTime:       s.Phases.Convert,
		ReduceTime:        s.Phases.Reduce,
		Workers:           s.Workers,
		ParEffMap:         s.ParEff.Map,
		ParEffAggr:        s.ParEff.Aggregate,
		ParEffConvert:     s.ParEff.Convert,
		ParEffReduce:      s.ParEff.Reduce,
	}, nil
}

// MRMPIEngine runs stages on the MR-MPI baseline (internal/mrmpi).
type MRMPIEngine struct {
	comm     *mpi.Comm
	arena    *mem.Arena
	spill    *pfs.FS
	PageSize int
	Mode     mrmpi.Mode
	Costs    core.Costs
}

// NewMRMPIEngine creates an MR-MPI-backed engine for this rank. spill is
// the parallel file system that receives out-of-core pages.
func NewMRMPIEngine(comm *mpi.Comm, arena *mem.Arena, spill *pfs.FS) *MRMPIEngine {
	return &MRMPIEngine{comm: comm, arena: arena, spill: spill}
}

// Comm returns the rank's communicator.
func (e *MRMPIEngine) Comm() *mpi.Comm { return e.comm }

// Name returns "MR-MPI".
func (e *MRMPIEngine) Name() string { return "MR-MPI" }

// RunStage implements Engine. KV-hints and partial reduction are not
// supported by MR-MPI and are ignored, as in the original library.
func (e *MRMPIEngine) RunStage(opts StageOpts, input core.Input, mapFn core.MapFunc,
	reduceFn core.ReduceFunc, sink func(k, v []byte) error) (StageStats, error) {
	mr := mrmpi.New(e.comm, mrmpi.Config{
		Arena:    e.arena,
		PageSize: e.PageSize,
		Mode:     e.Mode,
		Spill:    e.spill,
		Costs:    e.Costs,
	})
	defer mr.Free()
	if err := mr.Map(input, mapFn); err != nil {
		return StageStats{}, err
	}
	if opts.Combiner != nil {
		if err := mr.Compress(opts.Combiner); err != nil {
			return StageStats{}, err
		}
	}
	if err := mr.Aggregate(); err != nil {
		return StageStats{}, err
	}
	if reduceFn != nil {
		if err := mr.Convert(); err != nil {
			return StageStats{}, err
		}
		if err := mr.Reduce(reduceFn); err != nil {
			return StageStats{}, err
		}
	}
	if sink != nil {
		if err := mr.ScanOutput(sink); err != nil {
			return StageStats{}, err
		}
	}
	s := mr.Stats()
	return StageStats{
		ShuffledBytes: s.ShuffledBytes,
		SpilledBytes:  s.SpilledBytes,
		MapOutKVs:     s.MapOutKVs,
		OutputKVs:     s.OutputKVs,
		MapTime:       s.Phases.Map,
		AggrTime:      s.Phases.Aggregate,
		ConvertTime:   s.Phases.Convert,
		ReduceTime:    s.Phases.Reduce,
	}, nil
}
