package workloads

import (
	"math"

	"mimir/internal/core"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

// ZipfConfig parameterizes the skewed WordCount key generator, modeled on
// the --zipf/--contention knobs of conflict-benchmark harnesses: Skew is the
// Zipf exponent s (0 = uniform, ~1 = natural text, >1 = heavy head) and
// Contention diverts an extra probability mass onto the single hottest key,
// letting experiments dial one-key hotspots independently of the tail shape.
type ZipfConfig struct {
	// Skew is the Zipf exponent s >= 0. Unlike the Wikipedia generator's
	// rejection sampler (valid only for s > 1), sampling is by exact
	// inverse-CDF table, so the whole 0..2 sweep of the skew matrix runs on
	// one generator.
	Skew float64
	// Vocab is the vocabulary size (default 16384, the Wikipedia scale).
	Vocab int
	// Contention in [0, 1] is extra probability mass diverted to word id 0
	// on top of the Zipf draw. 0 adds none; 0.5 sends half of all draws to
	// the hottest key regardless of Skew.
	Contention float64
}

func (z ZipfConfig) vocab() int {
	if z.Vocab > 0 {
		return z.Vocab
	}
	return wikipediaVocab
}

// zipfTable samples word ids 0..vocab-1 with P(i) ∝ (i+1)^-s by binary
// search over the exact cumulative weights. Table construction is O(vocab)
// once per input share; sampling is O(log vocab) per word.
type zipfTable struct {
	cum   []float64 // cum[i] = sum of weights 0..i
	total float64
}

func newZipfTable(s float64, vocab int) *zipfTable {
	t := &zipfTable{cum: make([]float64, vocab)}
	for i := 0; i < vocab; i++ {
		t.total += math.Exp(-s * math.Log(float64(i+1)))
		t.cum[i] = t.total
	}
	return t
}

func (t *zipfTable) sample(r *rng) uint64 {
	x := r.float64() * t.total
	lo, hi := 0, len(t.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint64(lo)
}

// ZipfTextInput returns a rank's share of a zipf-skewed synthetic text
// dataset totalling totalBytes across nranks ranks, in the same ~1 KiB-line
// shape as TextInput. Every record draws from its own RNG stream keyed by
// (seed, rank, record index) — never from worker-shared state — so runs are
// reproducible under any Workers setting. Reading charges the input file
// system like TextInput.
func ZipfTextInput(fs *pfs.FS, clock *simtime.Clock, cfg ZipfConfig, seed uint64,
	totalBytes int64, rank, nranks int) core.Input {
	share := totalBytes / int64(nranks)
	if rank < int(totalBytes%int64(nranks)) {
		share++
	}
	vocab := cfg.vocab()
	return func(emit func(rec core.Record) error) error {
		table := newZipfTable(cfg.Skew, vocab)
		buf := make([]byte, 0, textRecordSize+32)
		var produced, record int64
		for produced < share {
			r := streamFor(seed, rank, record)
			record++
			buf = buf[:0]
			for len(buf) < textRecordSize && produced+int64(len(buf)) < share {
				var id uint64
				if cfg.Contention > 0 && r.float64() < cfg.Contention {
					id = 0
				} else {
					id = table.sample(r)
				}
				buf = wordFor(buf, id, Wikipedia)
				buf = append(buf, ' ')
			}
			produced += int64(len(buf))
			if fs != nil {
				fs.ChargeRead(clock, int64(len(buf)))
			}
			if err := emit(core.Record{Val: buf}); err != nil {
				return err
			}
		}
		return nil
	}
}
