package workloads

import (
	"mimir/internal/core"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

// Distribution selects a WordCount dataset.
type Distribution int

const (
	// Uniform is the paper's synthetic dataset: words drawn uniformly from a
	// fixed vocabulary, giving balanced partitions.
	Uniform Distribution = iota
	// Wikipedia stands in for the PUMA Wikipedia dataset: Zipf-distributed
	// word popularity with heterogeneous word lengths, giving the heavy key
	// and partition skew the paper observes.
	Wikipedia
)

// String names the distribution as the paper does.
func (d Distribution) String() string {
	if d == Wikipedia {
		return "Wikipedia"
	}
	return "Uniform"
}

// Generator parameters. Word lengths are tuned so that the average KV
// expansion factor of WordCount (encoded KV bytes / input bytes) is ~2.5 for
// Uniform and ~3.5 for Wikipedia, which places the engines' in-memory limits
// at the same dataset sizes the paper reports (e.g. MR-MPI with 512 MB pages
// handles 4 GB of uniform text on a Comet node and spills beyond it).
// Vocabulary sizes are scaled down with the datasets: a combiner bucket
// holding one entry per distinct word costs (vocab x entry bytes) per rank,
// and that footprint must stand in the same proportion to the scaled node
// memory as the real vocabularies did to 16-128 GB nodes — otherwise the KV
// compression figures (11/12) cannot reproduce. The flip side, documented
// in EXPERIMENTS.md, is that hash-partition variance is higher than the
// paper's, so MR-MPI's uniform-dataset weak scaling dies at smaller node
// counts than the paper's 32-64.
const (
	uniformVocab   = 8192
	wikipediaVocab = 16384
	wikipediaSkew  = 1.07 // Zipf exponent; word frequencies in text follow s ~ 1
	textRecordSize = 1024 // records ("lines") of about 1 KiB
)

// letters used to synthesize words deterministically from a word id.
const letters = "abcdefghijklmnopqrstuvwxyz"

// wordFor appends the vocabulary word with the given id. The word length
// grows slowly with id for Uniform; for Wikipedia, popular ids (small
// numbers) get short words and the long tail gets long words, mimicking
// natural text where frequent words are short.
func wordFor(dst []byte, id uint64, dist Distribution) []byte {
	length := 6 + int(id%7) // 6..12 chars
	if dist == Wikipedia {
		switch {
		case id < 64:
			length = 4 + int(id%3) // the, of, and, ...
		case id < 4096:
			length = 5 + int(id%5)
		default:
			length = 6 + int(id%15) // rare long words
		}
	}
	x := id
	for i := 0; i < length; i++ {
		dst = append(dst, letters[x%26])
		x = x/26 + id + uint64(i)*31
	}
	return dst
}

// TextInput returns a rank's share of a synthetic text dataset totalling
// totalBytes across nranks ranks. Records are ~1 KiB lines of
// space-separated words. Reading is charged to clock against the input file
// system, standing in for reading the dataset from Lustre/GPFS.
func TextInput(fs *pfs.FS, clock *simtime.Clock, dist Distribution, seed uint64,
	totalBytes int64, rank, nranks int) core.Input {
	share := totalBytes / int64(nranks)
	if rank < int(totalBytes%int64(nranks)) {
		share++
	}
	return func(emit func(rec core.Record) error) error {
		r := newRNG(seed + uint64(rank)*0x51_7C_C1_B7_27_22_0A_95)
		var z *zipf
		if dist == Wikipedia {
			z = newZipf(r, wikipediaSkew, wikipediaVocab)
		}
		buf := make([]byte, 0, textRecordSize+32)
		var produced int64
		for produced < share {
			buf = buf[:0]
			for len(buf) < textRecordSize && produced+int64(len(buf)) < share {
				var id uint64
				if dist == Wikipedia {
					id = z.sample() - 1
				} else {
					id = uint64(r.intn(uniformVocab))
				}
				buf = wordFor(buf, id, dist)
				buf = append(buf, ' ')
			}
			produced += int64(len(buf))
			if fs != nil {
				fs.ChargeRead(clock, int64(len(buf)))
			}
			if err := emit(core.Record{Val: buf}); err != nil {
				return err
			}
		}
		return nil
	}
}
