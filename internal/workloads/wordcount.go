package workloads

import (
	"mimir/internal/core"
	"mimir/internal/kvbuf"
	"mimir/internal/pfs"
)

// WCHint is WordCount's KV-hint: the key is a NUL-free word string (the
// paper's reserved -1 "strlen" length) and the value a fixed 8-byte count.
func WCHint() kvbuf.Hint { return kvbuf.Hint{Key: kvbuf.StrZ(), Val: kvbuf.Fixed(8)} }

// WordCountMap splits a text record into words, emitting (word, 1).
func WordCountMap(rec core.Record, emit core.Emitter) error {
	data := rec.Val
	start := -1
	one := core.Uint64Bytes(1)
	for i := 0; i <= len(data); i++ {
		if i < len(data) && data[i] != ' ' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			if err := emit.Emit(data[start:i], one); err != nil {
				return err
			}
			start = -1
		}
	}
	return nil
}

// WordCountReduce sums the occurrence counts of one word.
func WordCountReduce(key []byte, vals *kvbuf.ValueIter, emit core.Emitter) error {
	var sum uint64
	for v, ok := vals.Next(); ok; v, ok = vals.Next() {
		sum += core.BytesUint64(v)
	}
	return emit.Emit(key, core.Uint64Bytes(sum))
}

// WordCountCombine merges two counts; it serves as both the KV compression
// and the partial-reduction callback (WordCount has the paper's
// "partial-reduce invariance": + is commutative and associative).
func WordCountCombine(_ []byte, existing, incoming []byte) ([]byte, error) {
	return core.Uint64Bytes(core.BytesUint64(existing) + core.BytesUint64(incoming)), nil
}

// WCConfig describes one WordCount run.
type WCConfig struct {
	Dist       Distribution
	TotalBytes int64
	Seed       uint64
	// Zipf, if set, replaces the Dist generator with the parameterized
	// zipf key generator (ZipfTextInput): tunable skew and contention
	// instead of the two fixed dataset shapes.
	Zipf *ZipfConfig
}

// WCResult summarizes one rank's view of a WordCount run.
type WCResult struct {
	UniqueWords int64 // on this rank
	TotalWords  uint64
	Stats       StageStats
}

// RunWordCount executes WC on the given engine. fs (may be nil in tests)
// charges input reading.
func RunWordCount(e Engine, fs *pfs.FS, cfg WCConfig, opts StageOpts) (WCResult, error) {
	comm := e.Comm()
	var input core.Input
	if cfg.Zipf != nil {
		input = ZipfTextInput(fs, comm.Clock(), *cfg.Zipf, cfg.Seed, cfg.TotalBytes, comm.Rank(), comm.Size())
	} else {
		input = TextInput(fs, comm.Clock(), cfg.Dist, cfg.Seed, cfg.TotalBytes, comm.Rank(), comm.Size())
	}
	var res WCResult
	stats, err := e.RunStage(opts, input, WordCountMap, WordCountReduce,
		func(k, v []byte) error {
			res.UniqueWords++
			res.TotalWords += core.BytesUint64(v)
			return nil
		})
	if err != nil {
		return res, err
	}
	res.Stats = stats
	return res, nil
}
