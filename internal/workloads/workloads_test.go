package workloads

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"mimir/internal/core"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

func testNet() simtime.NetworkModel { return simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9} }

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	c := newRNG(43)
	if a.next() == c.next() {
		t.Error("different seeds produced equal first draws (suspicious)")
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := newRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("float64() = %v out of [0,1)", f)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := newRNG(7)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.normal()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestZipfSkew(t *testing.T) {
	r := newRNG(3)
	z := newZipf(r, wikipediaSkew, 1<<20)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		k := z.sample()
		if k < 1 || k > 1<<20 {
			t.Fatalf("zipf sample %d out of range", k)
		}
		counts[k]++
	}
	// Rank 1 must be far more popular than rank 100.
	if counts[1] < 10*counts[100] {
		t.Errorf("zipf skew too weak: count(1)=%d count(100)=%d", counts[1], counts[100])
	}
	// And the head must dominate: top-10 ranks should hold >20% of the mass.
	var head int
	for k := uint64(1); k <= 10; k++ {
		head += counts[k]
	}
	if head < n/5 {
		t.Errorf("zipf head mass = %d/%d, want > 20%%", head, n)
	}
}

func TestTextInputProducesRequestedBytes(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Wikipedia} {
		var got int64
		in := TextInput(nil, nil, dist, 1, 10000, 0, 1)
		err := in(func(rec core.Record) error {
			got += int64(len(rec.Val))
			for _, w := range strings.Fields(string(rec.Val)) {
				if len(w) == 0 {
					t.Fatal("empty word")
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// Lines stop at a word boundary, so allow one word of overshoot.
		if got < 10000 || got > 10000+64 {
			t.Errorf("%v: produced %d bytes, want ~10000", dist, got)
		}
	}
}

func TestTextInputSplitsAcrossRanks(t *testing.T) {
	var total int64
	for rank := 0; rank < 3; rank++ {
		in := TextInput(nil, nil, Uniform, 1, 10000, rank, 3)
		_ = in(func(rec core.Record) error {
			total += int64(len(rec.Val))
			return nil
		})
	}
	if total < 10000 || total > 10000+3*64 {
		t.Errorf("3-rank total = %d, want ~10000", total)
	}
}

func TestTextInputChargesIO(t *testing.T) {
	fs := pfs.New(pfs.Config{Bandwidth: 1e3})
	clock := simtime.NewClock()
	in := TextInput(fs, clock, Uniform, 1, 4096, 0, 1)
	if err := in(func(core.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if clock.Spent(simtime.IO) == 0 {
		t.Error("input read charged no IO time")
	}
}

func TestWikipediaMoreSkewedThanUniform(t *testing.T) {
	// Count word frequencies; Wikipedia's top word must dominate far more.
	topShare := func(dist Distribution) float64 {
		counts := map[string]int{}
		total := 0
		in := TextInput(nil, nil, dist, 5, 1<<16, 0, 1)
		_ = in(func(rec core.Record) error {
			for _, w := range strings.Fields(string(rec.Val)) {
				counts[w]++
				total++
			}
			return nil
		})
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(total)
	}
	u, w := topShare(Uniform), topShare(Wikipedia)
	if w < 4*u {
		t.Errorf("Wikipedia top-word share %v not >> Uniform %v", w, u)
	}
}

// refWordCount regenerates the same dataset serially and counts by map.
func refWordCount(dist Distribution, seed uint64, total int64, nranks int) (unique int64, words uint64) {
	counts := map[string]uint64{}
	for rank := 0; rank < nranks; rank++ {
		in := TextInput(nil, nil, dist, seed, total, rank, nranks)
		_ = in(func(rec core.Record) error {
			for _, w := range strings.Fields(string(rec.Val)) {
				counts[w]++
				words++
			}
			return nil
		})
	}
	return int64(len(counts)), words
}

type engines struct {
	name  string
	build func(c *mpi.Comm, arena *mem.Arena, spill *pfs.FS) Engine
}

func bothEngines() []engines {
	return []engines{
		{"Mimir", func(c *mpi.Comm, a *mem.Arena, s *pfs.FS) Engine { return NewMimirEngine(c, a) }},
		{"MR-MPI", func(c *mpi.Comm, a *mem.Arena, s *pfs.FS) Engine { return NewMRMPIEngine(c, a, s) }},
	}
}

func TestWordCountBothEngines(t *testing.T) {
	const p = 4
	cfg := WCConfig{Dist: Uniform, TotalBytes: 1 << 15, Seed: 11}
	wantUnique, wantWords := refWordCount(cfg.Dist, cfg.Seed, cfg.TotalBytes, p)
	for _, eng := range bothEngines() {
		t.Run(eng.name, func(t *testing.T) {
			w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
			arena := mem.NewArena(0)
			spill := pfs.New(pfs.Config{Bandwidth: 1e9})
			var unique int64
			var words uint64
			results := make([]WCResult, p)
			err := w.Run(func(c *mpi.Comm) error {
				res, err := RunWordCount(eng.build(c, arena, spill), nil, cfg, StageOpts{})
				results[c.Rank()] = res
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				unique += r.UniqueWords
				words += r.TotalWords
			}
			if unique != wantUnique || words != wantWords {
				t.Errorf("unique=%d words=%d, want %d/%d", unique, words, wantUnique, wantWords)
			}
		})
	}
}

func TestWordCountOptimizationLadderAgrees(t *testing.T) {
	const p = 3
	cfg := WCConfig{Dist: Wikipedia, TotalBytes: 1 << 14, Seed: 9}
	wantUnique, wantWords := refWordCount(cfg.Dist, cfg.Seed, cfg.TotalBytes, p)
	ladder := map[string]StageOpts{
		"baseline":    {},
		"hint":        {Hint: WCHint()},
		"hint;pr":     {Hint: WCHint(), PartialReduce: WordCountCombine},
		"hint;pr;cps": {Hint: WCHint(), PartialReduce: WordCountCombine, Combiner: WordCountCombine},
		"cps-only":    {Combiner: WordCountCombine},
		"pr-only":     {PartialReduce: WordCountCombine},
	}
	for name, opts := range ladder {
		t.Run(name, func(t *testing.T) {
			w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
			arena := mem.NewArena(0)
			var unique int64
			var words uint64
			results := make([]WCResult, p)
			err := w.Run(func(c *mpi.Comm) error {
				res, err := RunWordCount(NewMimirEngine(c, arena), nil, cfg, opts)
				results[c.Rank()] = res
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range results {
				unique += r.UniqueWords
				words += r.TotalWords
			}
			if unique != wantUnique || words != wantWords {
				t.Errorf("unique=%d words=%d, want %d/%d", unique, words, wantUnique, wantWords)
			}
		})
	}
}

func TestOctreeKeys(t *testing.T) {
	k := octKey(3, 0.6, 0.3, 0.9)
	if int(k>>56) != 3 {
		t.Errorf("level bits = %d, want 3", k>>56)
	}
	pk := parentKey(k)
	if int(pk>>56) != 2 {
		t.Errorf("parent level = %d, want 2", pk>>56)
	}
	if pk != octKey(2, 0.6, 0.3, 0.9) {
		t.Errorf("parentKey mismatch: %x vs %x", pk, octKey(2, 0.6, 0.3, 0.9))
	}
	if parentKey(octKey(1, 0.6, 0.3, 0.9)) != 0 {
		t.Error("level-1 parent should be the root sentinel 0")
	}
}

func TestGenPointsShares(t *testing.T) {
	var total int
	for rank := 0; rank < 3; rank++ {
		pts := genPoints(1, 100, rank, 3)
		total += len(pts)
		for _, p := range pts {
			for _, c := range p {
				if c < 0 || c >= 1 {
					t.Fatalf("point coordinate %v out of [0,1)", c)
				}
			}
		}
	}
	if total != 100 {
		t.Errorf("total points = %d, want 100", total)
	}
}

func TestOctreeBothEnginesAgree(t *testing.T) {
	const p = 3
	cfg := OCConfig{TotalPoints: 1 << 12, Seed: 21, MaxLevel: 5}
	var results []OCResult
	for _, eng := range bothEngines() {
		w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
		arena := mem.NewArena(0)
		spill := pfs.New(pfs.Config{Bandwidth: 1e9})
		res := make([]OCResult, p)
		err := w.Run(func(c *mpi.Comm) error {
			r, err := RunOctree(eng.build(c, arena, spill), nil, cfg, StageOpts{})
			res[c.Rank()] = r
			return err
		})
		if err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		results = append(results, res[0])
		if arena.Used() != 0 {
			t.Errorf("%s: arena used %d after OC", eng.name, arena.Used())
		}
	}
	if results[0].Levels != results[1].Levels || results[0].TotalDense != results[1].TotalDense {
		t.Errorf("engines disagree: Mimir %+v, MR-MPI %+v", results[0], results[1])
	}
	if results[0].Levels < 2 || results[0].TotalDense == 0 {
		t.Errorf("octree did not refine: %+v", results[0])
	}
}

func TestOctreeOptimizationsAgree(t *testing.T) {
	const p = 2
	cfg := OCConfig{TotalPoints: 1 << 11, Seed: 33, MaxLevel: 4}
	var base OCResult
	for i, opts := range []StageOpts{
		{},
		{Hint: OCHint(), PartialReduce: WordCountCombine, Combiner: WordCountCombine},
	} {
		w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
		arena := mem.NewArena(0)
		res := make([]OCResult, p)
		err := w.Run(func(c *mpi.Comm) error {
			r, err := RunOctree(NewMimirEngine(c, arena), nil, cfg, opts)
			res[c.Rank()] = r
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res[0]
		} else if res[0].Levels != base.Levels || res[0].DenseOctants != base.DenseOctants ||
			res[0].TotalDense != base.TotalDense {
			t.Errorf("optimized OC differs: %+v vs %+v", res[0], base)
		}
	}
}

// refBFS runs a serial BFS over the same generated edges.
func refBFS(cfg BFSConfig, nranks int) (visited int64, depth int) {
	adj := map[uint64][]uint64{}
	for rank := 0; rank < nranks; rank++ {
		for _, e := range genEdges(cfg.Seed, cfg.Scale, cfg.EdgeFactor, rank, nranks) {
			adj[e[0]] = append(adj[e[0]], e[1])
			adj[e[1]] = append(adj[e[1]], e[0])
		}
	}
	root := cfg.Root % (1 << uint(cfg.Scale))
	seen := map[uint64]bool{root: true}
	frontier := []uint64{root}
	for len(frontier) > 0 {
		depth++
		var next []uint64
		for _, u := range frontier {
			for _, w := range adj[u] {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return int64(len(seen)), depth
}

func TestBFSBothEnginesMatchReference(t *testing.T) {
	const p = 3
	cfg := BFSConfig{Scale: 8, EdgeFactor: 8, Seed: 17, Root: 0, Validate: true}
	wantVisited, _ := refBFS(cfg, p)
	for _, eng := range bothEngines() {
		t.Run(eng.name, func(t *testing.T) {
			w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
			arena := mem.NewArena(0)
			spill := pfs.New(pfs.Config{Bandwidth: 1e9})
			res := make([]BFSResult, p)
			err := w.Run(func(c *mpi.Comm) error {
				r, err := RunBFS(eng.build(c, arena, spill), nil, cfg, StageOpts{}, MultiRound{})
				res[c.Rank()] = r
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if res[0].Visited != wantVisited {
				t.Errorf("visited = %d, want %d", res[0].Visited, wantVisited)
			}
			if res[0].Visited < 100 {
				t.Errorf("suspiciously small component: %d", res[0].Visited)
			}
			if arena.Used() != 0 {
				t.Errorf("arena used %d after BFS", arena.Used())
			}
		})
	}
}

func TestBFSWithOptimizations(t *testing.T) {
	const p = 2
	cfg := BFSConfig{Scale: 7, EdgeFactor: 8, Seed: 29, Root: 3, Validate: true}
	wantVisited, _ := refBFS(cfg, p)
	for _, opts := range []StageOpts{
		{Hint: BFSHint()},
		{Hint: BFSHint(), Combiner: BFSCombine},
	} {
		w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
		arena := mem.NewArena(0)
		res := make([]BFSResult, p)
		err := w.Run(func(c *mpi.Comm) error {
			r, err := RunBFS(NewMimirEngine(c, arena), nil, cfg, opts, MultiRound{})
			res[c.Rank()] = r
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Visited != wantVisited {
			t.Errorf("opts %+v: visited = %d, want %d", opts, res[0].Visited, wantVisited)
		}
	}
}

func TestBFSCompressionReducesShuffle(t *testing.T) {
	const p = 2
	cfg := BFSConfig{Scale: 8, EdgeFactor: 16, Seed: 41}
	run := func(opts StageOpts) int64 {
		w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
		arena := mem.NewArena(0)
		res := make([]BFSResult, p)
		err := w.Run(func(c *mpi.Comm) error {
			r, err := RunBFS(NewMimirEngine(c, arena), nil, cfg, opts, MultiRound{})
			res[c.Rank()] = r
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Stats.ShuffledBytes + res[1].Stats.ShuffledBytes
	}
	base := run(StageOpts{Hint: BFSHint()})
	cps := run(StageOpts{Hint: BFSHint(), Combiner: BFSCombine})
	if cps >= base {
		t.Errorf("cps shuffle %d not < baseline %d (R-MAT has duplicate edges)", cps, base)
	}
}

func TestRMATPowerLaw(t *testing.T) {
	edges := genEdges(1, 10, 16, 0, 1)
	if len(edges) != 16<<10 {
		t.Fatalf("edges = %d, want %d", len(edges), 16<<10)
	}
	deg := map[uint64]int{}
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	max, sum := 0, 0
	for _, d := range deg {
		if d > max {
			max = d
		}
		sum += d
	}
	avg := float64(sum) / float64(len(deg))
	if float64(max) < 8*avg {
		t.Errorf("max degree %d vs avg %.1f: not scale-free enough", max, avg)
	}
}

func TestVertexOwnerStable(t *testing.T) {
	for v := uint64(0); v < 100; v++ {
		o := vertexOwner(v, 7)
		if o < 0 || o >= 7 {
			t.Fatalf("owner %d out of range", o)
		}
		if o != vertexOwner(v, 7) {
			t.Fatal("owner not deterministic")
		}
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "Uniform" || Wikipedia.String() != "Wikipedia" {
		t.Error("Distribution.String mismatch")
	}
}

func TestWordForDeterministic(t *testing.T) {
	a := wordFor(nil, 12345, Wikipedia)
	b := wordFor(nil, 12345, Wikipedia)
	if string(a) != string(b) {
		t.Error("wordFor not deterministic")
	}
	if len(wordFor(nil, 3, Wikipedia)) > len(wordFor(nil, 999999, Wikipedia)) {
		t.Error("popular Wikipedia words should be short")
	}
}

func TestEngineNames(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 1, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{})
	err := w.Run(func(c *mpi.Comm) error {
		if NewMimirEngine(c, arena).Name() != "Mimir" {
			return fmt.Errorf("bad Mimir name")
		}
		if NewMRMPIEngine(c, arena, spill).Name() != "MR-MPI" {
			return fmt.Errorf("bad MR-MPI name")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
