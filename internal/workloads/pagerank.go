package workloads

import (
	"encoding/binary"
	"fmt"

	"mimir/internal/core"
	"mimir/internal/kvbuf"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
)

// PageRank over the R-MAT corpus (graphgen) as an iterative MapReduce job:
// one structure-building stage distributes directed edges to their source's
// owner rank, then each round is one stage whose map emits per-edge rank
// contributions and whose shuffle routes them to the destination's owner,
// where the damped update is applied. Dangling mass (out-degree-0 vertices)
// is redistributed uniformly via one AllreduceInt64 per round.
//
// All arithmetic is int64 fixed point (PageRankOne = 1.0). Floating-point
// addition is not associative, and both the worker pool and the hot-key
// split re-merge are free to reassociate partial sums — integer scores make
// every reassociation exact, which is what lets the determinism battery
// demand byte-identical output across workers, transports, and spill
// policies. Scores use the "unit mass per vertex" formulation: sum of all
// scores stays near N*PageRankOne (uniform-redistribution truncation leaks
// a few units per round, deterministically).

// PageRankOne is fixed-point 1.0: scores print as score/1e9.
const PageRankOne = int64(1_000_000_000)

// The damping factor 0.85 as a rational, applied in integer arithmetic.
const (
	prDampNum     = 85
	prTeleportNum = 100 - prDampNum
	prDen         = 100
)

// PageRankConfig describes one run.
type PageRankConfig struct {
	// Scale: the graph has 2^Scale vertices and EdgeFactor*2^Scale directed
	// edges (default edgefactor 16), R-MAT generated like BFS's corpus.
	Scale      int
	EdgeFactor int
	Seed       uint64
	// MaxRounds caps the iteration (default 30).
	MaxRounds int
	// Eps is the convergence threshold on the global L1 residual
	// sum_v |score_r(v) - score_r-1(v)| in fixed-point units (default:
	// N*PageRankOne / 1e6, i.e. a relative residual of 1e-6).
	Eps int64
}

// PageRankResult summarizes a run.
type PageRankResult struct {
	Rounds    int
	Converged bool
	// Residual is the final global L1 residual (fixed-point units).
	Residual int64
	// Vertices is the number of vertices this rank owns.
	Vertices int64
	Stats    StageStats
}

// PageRankHint is the job's KV-hint: 8-byte vertex keys, 8-byte fixed-point
// contributions.
func PageRankHint() kvbuf.Hint { return kvbuf.Hint{Key: kvbuf.Fixed(8), Val: kvbuf.Fixed(8)} }

// Int64VecAdd merges two equal-length vectors of little-endian int64 lanes
// by element-wise addition. It is the partial-reduce (and compression)
// combiner for PageRank (one lane: a contribution sum) and k-means
// (Dims+1 lanes: coordinate sums and a count) — commutative and
// associative, so hot-key splitting may engage.
func Int64VecAdd(_ []byte, existing, incoming []byte) ([]byte, error) {
	if len(existing) != len(incoming) || len(existing)%8 != 0 {
		return nil, fmt.Errorf("workloads: int64 vector add on %d vs %d byte values", len(existing), len(incoming))
	}
	out := make([]byte, len(existing))
	for i := 0; i < len(existing); i += 8 {
		a := int64(binary.LittleEndian.Uint64(existing[i:]))
		b := int64(binary.LittleEndian.Uint64(incoming[i:]))
		binary.LittleEndian.PutUint64(out[i:], uint64(a+b))
	}
	return out, nil
}

// Int64VecReduce is the reduce-phase equivalent of Int64VecAdd for runs
// with partial reduction off.
func Int64VecReduce(key []byte, vals *kvbuf.ValueIter, emit core.Emitter) error {
	var acc []byte
	for v, ok := vals.Next(); ok; v, ok = vals.Next() {
		if acc == nil {
			acc = append([]byte(nil), v...)
			continue
		}
		merged, err := Int64VecAdd(key, acc, v)
		if err != nil {
			return err
		}
		acc = merged
	}
	return emit.Emit(key, acc)
}

// RunPageRank executes the job. sink, when non-nil, receives this rank's
// owned (vertex, score) pairs in ascending vertex order after the final
// round. Vertex ownership is the engines' key hash, so the stage always
// runs on the default hash partitioner whatever the engine is configured
// with — a re-sampling partitioner would migrate vertex state between
// rounds. mr supplies the round machinery (checkpoint cadence, crash
// hooks); its Threshold/MaxRounds are derived from cfg and may not be set.
func RunPageRank(e Engine, fs *pfs.FS, cfg PageRankConfig, opts StageOpts, mr MultiRound,
	sink func(v uint64, score int64) error) (PageRankResult, error) {
	var res PageRankResult
	if mr.Threshold != 0 || mr.MaxRounds != 0 {
		return res, fmt.Errorf("workloads: pagerank derives Threshold/MaxRounds from its config")
	}
	comm := e.Comm()
	if cfg.EdgeFactor <= 0 {
		cfg.EdgeFactor = DefaultEdgeFactor
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 30
	}
	nVerts := int64(1) << uint(cfg.Scale)
	if cfg.Eps <= 0 {
		cfg.Eps = nVerts * PageRankOne / 1_000_000
	}

	// Graph state must stay put across rounds: pin the hash partitioner.
	if me, ok := e.(*MimirEngine); ok && me.Partitioner != nil {
		prev := me.Partitioner
		me.Partitioner = nil
		defer func() { me.Partitioner = prev }()
	}

	arena := engineArena(e)
	var chargedBytes int64
	charge := func(n int64) error {
		if arena == nil {
			return nil
		}
		if err := arena.Alloc(n); err != nil {
			return fmt.Errorf("workloads: building pagerank state: %w", err)
		}
		chargedBytes += n
		return nil
	}
	defer func() {
		if arena != nil && chargedBytes > 0 {
			arena.Free(chargedBytes)
		}
	}()

	// ---- Structure stage: route each directed edge to its source's owner.
	edges := genEdges(cfg.Seed, cfg.Scale, cfg.EdgeFactor, comm.Rank(), comm.Size())
	if fs != nil {
		fs.ChargeRead(comm.Clock(), int64(len(edges))*16)
	}
	edgeInput := func(emit func(rec core.Record) error) error {
		var rec [16]byte
		for _, ed := range edges {
			binary.LittleEndian.PutUint64(rec[0:], ed[0])
			binary.LittleEndian.PutUint64(rec[8:], ed[1])
			if err := emit(core.Record{Val: rec[:]}); err != nil {
				return err
			}
		}
		return nil
	}
	edgeMap := func(rec core.Record, emit core.Emitter) error {
		return emit.Emit(rec.Val[0:8], rec.Val[8:16])
	}
	out := map[uint64][]uint64{}
	sopts := opts
	sopts.Combiner = nil // every (u,v) pair is a distinct edge
	sopts.PartialReduce = nil
	sopts.Checkpoint = NamedCheckpoint(mr.Checkpoint, "adj")
	stats, err := e.RunStage(sopts, edgeInput, edgeMap, nil, func(k, v []byte) error {
		u := binary.LittleEndian.Uint64(k)
		w := binary.LittleEndian.Uint64(v)
		lst, seen := out[u]
		if !seen {
			if err := charge(adjEntryBytes); err != nil {
				return err
			}
		}
		if err := charge(adjEdgeBytes); err != nil {
			return err
		}
		out[u] = append(lst, w)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Stats = stats

	// Owned vertices (key-hash ownership, every vertex exists even when
	// isolated), in ascending order for the output pass.
	var owned []uint64
	for v := uint64(0); v < uint64(nVerts); v++ {
		if vertexOwner(v, comm.Size()) == comm.Rank() {
			owned = append(owned, v)
		}
	}
	if err := charge(int64(len(owned)) * 24); err != nil { // owned slice + score map estimate
		return res, err
	}
	res.Vertices = int64(len(owned))
	score := make(map[uint64]int64, len(owned))
	for _, v := range owned {
		score[v] = PageRankOne
	}

	// ---- Rounds. The caller's opts request PR/compression abstractly; the
	// job substitutes its own combiner (contributions sum as int64 lanes).
	ropts := opts
	ropts.Combiner = nil
	ropts.PartialReduce = nil
	if opts.Combiner != nil {
		ropts.Combiner = Int64VecAdd
	}
	if opts.PartialReduce != nil {
		ropts.PartialReduce = Int64VecAdd
	}
	mr.Threshold = cfg.Eps
	mr.MaxRounds = cfg.MaxRounds
	contrib := make(map[uint64]int64, len(owned))
	rr, err := RunRounds(e, ropts, mr, func(round int, stageOpts StageOpts) (int64, StageStats, error) {
		// Dangling mass: redistribute out-degree-0 vertices' scores
		// uniformly. Integer division leaks the remainder — deterministic,
		// and the damped update keeps the system stable regardless.
		var dangling int64
		for _, v := range owned {
			if len(out[v]) == 0 {
				dangling += score[v]
			}
		}
		total, err := comm.AllreduceInt64([]int64{dangling}, mpi.OpSum)
		if err != nil {
			return 0, StageStats{}, err
		}
		danglingShare := total[0] / nVerts

		srcInput := func(emit func(rec core.Record) error) error {
			var rec [8]byte
			for _, v := range owned {
				if len(out[v]) == 0 {
					continue
				}
				binary.LittleEndian.PutUint64(rec[:], v)
				if err := emit(core.Record{Val: rec[:]}); err != nil {
					return err
				}
			}
			return nil
		}
		contribMap := func(rec core.Record, emit core.Emitter) error {
			u := binary.LittleEndian.Uint64(rec.Val)
			nbrs := out[u]
			part := score[u] / int64(len(nbrs))
			var wb, cb [8]byte
			binary.LittleEndian.PutUint64(cb[:], uint64(part))
			for _, w := range nbrs {
				binary.LittleEndian.PutUint64(wb[:], w)
				if err := emit.Emit(wb[:], cb[:]); err != nil {
					return err
				}
			}
			return nil
		}
		for v := range contrib {
			delete(contrib, v)
		}
		stats, err := e.RunStage(stageOpts, srcInput, contribMap, Int64VecReduce, func(k, v []byte) error {
			contrib[binary.LittleEndian.Uint64(k)] += int64(binary.LittleEndian.Uint64(v))
			return nil
		})
		if err != nil {
			return 0, stats, err
		}
		var residual int64
		for _, v := range owned {
			next := prTeleportNum*PageRankOne/prDen +
				prDampNum*(contrib[v]+danglingShare)/prDen
			d := next - score[v]
			if d < 0 {
				d = -d
			}
			residual += d
			score[v] = next
		}
		return residual, stats, nil
	})
	if err != nil {
		return res, err
	}
	res.Stats.accumulate(rr.Stats)
	res.Rounds = rr.Rounds
	res.Converged = rr.Converged
	res.Residual = rr.LastVote

	if sink != nil {
		// owned was built by an ascending scan, so this streams in vertex order.
		for _, v := range owned {
			if err := sink(v, score[v]); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}
