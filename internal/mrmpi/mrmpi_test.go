package mrmpi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"mimir/internal/core"
	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

func testNet() simtime.NetworkModel { return simtime.NetworkModel{Alpha: 1e-7, Beta: 1e9} }

func wcMap(rec core.Record, emit core.Emitter) error {
	for _, w := range strings.Fields(string(rec.Val)) {
		if err := emit.Emit([]byte(w), core.Uint64Bytes(1)); err != nil {
			return err
		}
	}
	return nil
}

func wcReduce(key []byte, vals *kvbuf.ValueIter, emit core.Emitter) error {
	var sum uint64
	for v, ok := vals.Next(); ok; v, ok = vals.Next() {
		sum += core.BytesUint64(v)
	}
	return emit.Emit(key, core.Uint64Bytes(sum))
}

func wcCombine(_ []byte, existing, incoming []byte) ([]byte, error) {
	return core.Uint64Bytes(core.BytesUint64(existing) + core.BytesUint64(incoming)), nil
}

var testText = []string{
	"the quick brown fox jumps over the lazy dog",
	"the dog barks and the fox runs",
	"pack my box with five dozen liquor jugs",
	"the five boxing wizards jump quickly",
}

func refWordCount(lines []string) map[string]uint64 {
	ref := map[string]uint64{}
	for _, l := range lines {
		for _, w := range strings.Fields(l) {
			ref[w]++
		}
	}
	return ref
}

type wcResult struct {
	counts  map[string]uint64
	spilled int64
	peak    int64
}

// runWC executes the full MR-MPI WordCount pipeline.
func runWC(t *testing.T, p int, lines []string, pageSize int, mode Mode, compress bool) (wcResult, error) {
	t.Helper()
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{Bandwidth: 1e8, Latency: 1e-6, Sharers: p})
	var mu sync.Mutex
	res := wcResult{counts: map[string]uint64{}}
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, PageSize: pageSize, Mode: mode, Spill: spill})
		defer mr.Free()
		var mine []core.Record
		for i, l := range lines {
			if i%p == c.Rank() {
				mine = append(mine, core.Record{Val: []byte(l)})
			}
		}
		if err := mr.Map(core.SliceInput(mine), wcMap); err != nil {
			return err
		}
		if compress {
			if err := mr.Compress(wcCombine); err != nil {
				return err
			}
		}
		if err := mr.Aggregate(); err != nil {
			return err
		}
		if err := mr.Convert(); err != nil {
			return err
		}
		if err := mr.Reduce(wcReduce); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		res.spilled += mr.Stats().SpilledBytes
		return mr.ScanOutput(func(k, v []byte) error {
			res.counts[string(k)] += core.BytesUint64(v)
			return nil
		})
	})
	res.peak = arena.Peak()
	if err != nil {
		return res, err
	}
	if used := arena.Used(); used != 0 {
		t.Fatalf("arena used %d after job, want 0", used)
	}
	return res, nil
}

func checkWC(t *testing.T, got, want map[string]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("got %d unique words, want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
}

func TestWordCountInMemory(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("ranks=%d", p), func(t *testing.T) {
			res, err := runWC(t, p, testText, 64<<10, SpillWhenNeeded, false)
			if err != nil {
				t.Fatal(err)
			}
			checkWC(t, res.counts, refWordCount(testText))
			if res.spilled != 0 {
				t.Errorf("spilled %d bytes with a large page, want 0", res.spilled)
			}
		})
	}
}

func TestWordCountSpillCorrectness(t *testing.T) {
	// A page far smaller than the data forces out-of-core operation in every
	// phase; results must be identical.
	lines := make([]string, 40)
	for i := range lines {
		lines[i] = fmt.Sprintf("alpha beta gamma delta w%d x%d y%d", i%5, i%3, i)
	}
	res, err := runWC(t, 3, lines, 128, SpillWhenNeeded, false)
	if err != nil {
		t.Fatal(err)
	}
	checkWC(t, res.counts, refWordCount(lines))
	if res.spilled == 0 {
		t.Error("expected spilling with a 128-byte page")
	}
}

func TestSpillAlwaysCorrectness(t *testing.T) {
	res, err := runWC(t, 2, testText, 64<<10, SpillAlways, false)
	if err != nil {
		t.Fatal(err)
	}
	checkWC(t, res.counts, refWordCount(testText))
	if res.spilled == 0 {
		t.Error("SpillAlways must write data out of core even when it fits")
	}
}

func TestErrorIfExceedsFails(t *testing.T) {
	lines := make([]string, 64)
	for i := range lines {
		lines[i] = strings.Repeat(fmt.Sprintf("word%d ", i), 8)
	}
	_, err := runWC(t, 2, lines, 128, ErrorIfExceeds, false)
	if !errors.Is(err, ErrPageOverflow) {
		t.Fatalf("err = %v, want ErrPageOverflow", err)
	}
}

func TestCompressReducesShuffleNotMemory(t *testing.T) {
	// The paper: "With MR-MPI we do not observe any impact on peak memory
	// usage because, despite the compression, the framework uses a fixed
	// number of pages."
	lines := make([]string, 32)
	for i := range lines {
		lines[i] = strings.Repeat("same words over and over ", 3)
	}
	shuffled := func(compress bool) (int64, int64) {
		w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
		arena := mem.NewArena(0)
		spill := pfs.New(pfs.Config{Bandwidth: 1e8})
		var mu sync.Mutex
		var total int64
		err := w.Run(func(c *mpi.Comm) error {
			mr := New(c, Config{Arena: arena, PageSize: 32 << 10, Spill: spill})
			defer mr.Free()
			var mine []core.Record
			for i, l := range lines {
				if i%2 == c.Rank() {
					mine = append(mine, core.Record{Val: []byte(l)})
				}
			}
			if err := mr.Map(core.SliceInput(mine), wcMap); err != nil {
				return err
			}
			if compress {
				if err := mr.Compress(wcCombine); err != nil {
					return err
				}
			}
			if err := mr.Collate(); err != nil {
				return err
			}
			if err := mr.Reduce(wcReduce); err != nil {
				return err
			}
			mu.Lock()
			total += mr.Stats().ShuffledBytes
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return total, arena.Peak()
	}
	baseShuf, basePeak := shuffled(false)
	cpsShuf, cpsPeak := shuffled(true)
	if cpsShuf*2 > baseShuf {
		t.Errorf("compressed shuffle %d not << baseline %d", cpsShuf, baseShuf)
	}
	if cpsPeak < basePeak {
		t.Errorf("compression lowered MR-MPI peak (%d < %d); pages are fixed, it must not", cpsPeak, basePeak)
	}
}

func TestPeakMemoryIsPageBound(t *testing.T) {
	// MR-MPI peak memory is a function of page count, not dataset size.
	small, err := runWC(t, 2, testText[:1], 8<<10, SpillWhenNeeded, false)
	if err != nil {
		t.Fatal(err)
	}
	big, err := runWC(t, 2, append(append([]string{}, testText...), testText...), 8<<10, SpillWhenNeeded, false)
	if err != nil {
		t.Fatal(err)
	}
	if small.peak != big.peak {
		t.Errorf("peak varies with dataset: %d vs %d; MR-MPI pages are static", small.peak, big.peak)
	}
	// Aggregate dominates with 7 pages per rank.
	want := int64(2 * 7 * (8 << 10))
	if big.peak != want {
		t.Errorf("peak = %d, want %d (2 ranks x 7 pages)", big.peak, want)
	}
}

func TestPhaseOrderErrors(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 1, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{})
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, Spill: spill})
		defer mr.Free()
		if err := mr.Aggregate(); err == nil {
			return errors.New("Aggregate before Map succeeded")
		}
		if err := mr.Convert(); err == nil {
			return errors.New("Convert before Map succeeded")
		}
		if err := mr.Reduce(wcReduce); err == nil {
			return errors.New("Reduce before Convert succeeded")
		}
		if err := mr.Compress(wcCombine); err == nil {
			return errors.New("Compress before Map succeeded")
		}
		if err := mr.ScanOutput(func(k, v []byte) error { return nil }); err == nil {
			return errors.New("ScanOutput with no data succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOOMWhenPagesDontFit(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(20 << 10) // too small for 2 ranks x 7 x 4 KiB pages
	spill := pfs.New(pfs.Config{})
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, PageSize: 4 << 10, Spill: spill})
		defer mr.Free()
		if err := mr.Map(core.SliceInput([]core.Record{{Val: []byte("a b c")}}), wcMap); err != nil {
			return err
		}
		return mr.Aggregate()
	})
	if !errors.Is(err, mem.ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
}

func TestSpillChargesIOTime(t *testing.T) {
	lines := make([]string, 64)
	for i := range lines {
		lines[i] = fmt.Sprintf("many distinct word%d tokens%d here%d", i, i*7, i*13)
	}
	run := func(pageSize int) float64 {
		w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
		arena := mem.NewArena(0)
		spill := pfs.New(pfs.Config{Bandwidth: 1e5, Latency: 1e-3, Sharers: 2})
		err := w.Run(func(c *mpi.Comm) error {
			mr := New(c, Config{Arena: arena, PageSize: pageSize, Spill: spill})
			defer mr.Free()
			var mine []core.Record
			for i, l := range lines {
				if i%2 == c.Rank() {
					mine = append(mine, core.Record{Val: []byte(l)})
				}
			}
			if err := mr.Map(core.SliceInput(mine), wcMap); err != nil {
				return err
			}
			if err := mr.Collate(); err != nil {
				return err
			}
			return mr.Reduce(wcReduce)
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.MaxTime()
	}
	inMem := run(1 << 20)
	spilling := run(256)
	if spilling < 10*inMem {
		t.Errorf("spilling time %v not >> in-memory time %v", spilling, inMem)
	}
}

// Property: MR-MPI WordCount matches the reference for random corpora,
// page sizes, and modes that permit completion.
func TestWordCountMatchesReferenceProperty(t *testing.T) {
	f := func(seed uint16) bool {
		nLines := int(seed%6) + 1
		lines := make([]string, nLines)
		for i := range lines {
			var sb strings.Builder
			for j := 0; j < int(seed%12)+1; j++ {
				fmt.Fprintf(&sb, "t%d ", (int(seed)+i+j*3)%9)
			}
			lines[i] = sb.String()
		}
		pageSize := []int{256, 4096, 64 << 10}[seed%3]
		compress := seed%2 == 0
		res, err := runWC(t, int(seed%3)+1, lines, pageSize, SpillWhenNeeded, compress)
		if err != nil {
			return false
		}
		want := refWordCount(lines)
		if len(res.counts) != len(want) {
			return false
		}
		for w, n := range want {
			if res.counts[w] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		SpillWhenNeeded: "spill-when-needed",
		SpillAlways:     "spill-always",
		ErrorIfExceeds:  "error-if-exceeds",
		Mode(7):         "Mode(7)",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New without arena/spill did not panic")
		}
	}()
	New(nil, Config{})
}
