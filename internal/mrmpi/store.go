// Package mrmpi reimplements the MR-MPI baseline (Plimpton & Devine,
// "MapReduce in MPI for Large-Scale Graph Algorithms") with the memory
// model the paper critiques: statically allocated fixed-size pages per
// phase (map/aggregate/convert/reduce need 1/7/4/3 pages), explicit
// aggregate and convert calls with global synchronization, and out-of-core
// spillover of full pages to the global parallel file system — the behavior
// that produces the Figure 1 performance cliff.
package mrmpi

import (
	"fmt"

	"mimir/internal/mem"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

// Mode selects MR-MPI's out-of-core behavior (the paper's "three out-of-core
// writing settings").
type Mode int

const (
	// SpillWhenNeeded writes intermediate data to disk only when it exceeds
	// a single page (MR-MPI setting 2, the usual configuration).
	SpillWhenNeeded Mode = iota
	// SpillAlways writes all intermediate data to disk at the end of each
	// phase even if it fits in memory (MR-MPI setting 1).
	SpillAlways
	// ErrorIfExceeds reports an error and terminates if intermediate data is
	// larger than a single page (MR-MPI setting 3).
	ErrorIfExceeds
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case SpillWhenNeeded:
		return "spill-when-needed"
	case SpillAlways:
		return "spill-always"
	case ErrorIfExceeds:
		return "error-if-exceeds"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ErrPageOverflow is returned in ErrorIfExceeds mode when intermediate data
// exceeds a single page.
var ErrPageOverflow = fmt.Errorf("mrmpi: intermediate data exceeds a single page")

// store is MR-MPI's unit of intermediate data: exactly one in-memory page
// plus an optional spill file on the parallel file system holding the pages
// that did not fit. Records never straddle the page/spill boundary.
type store struct {
	arena    *mem.Arena
	pageSize int
	mode     Mode
	fs       *pfs.FS
	clock    *simtime.Clock
	name     string

	page     *mem.Page
	spilled  int64   // bytes in the spill file
	chunks   []int64 // length of each flushed chunk, in file order
	nrec     int64
	totBytes int64
}

func newStore(arena *mem.Arena, pageSize int, mode Mode, fs *pfs.FS, clock *simtime.Clock, name string) (*store, error) {
	p, err := arena.NewPage(pageSize)
	if err != nil {
		return nil, fmt.Errorf("mrmpi: allocating %s page: %w", name, err)
	}
	return &store{arena: arena, pageSize: pageSize, mode: mode, fs: fs, clock: clock, name: name, page: p}, nil
}

// append adds one encoded record, spilling the page when full.
func (s *store) append(rec []byte) error {
	if len(rec) > s.pageSize {
		// A single record larger than a page (e.g. a KMV of a hot key).
		if s.mode == ErrorIfExceeds {
			return fmt.Errorf("%w: record of %d bytes > page of %d", ErrPageOverflow, len(rec), s.pageSize)
		}
		s.flush()
		s.fs.Append(s.clock, s.name, rec)
		s.spilled += int64(len(rec))
		s.chunks = append(s.chunks, int64(len(rec)))
		s.nrec++
		s.totBytes += int64(len(rec))
		return nil
	}
	if s.page.Remaining() < len(rec) {
		if s.mode == ErrorIfExceeds {
			return fmt.Errorf("%w: %s holds %d bytes", ErrPageOverflow, s.name, s.totBytes)
		}
		s.flush()
	}
	s.page.Append(rec)
	s.nrec++
	s.totBytes += int64(len(rec))
	return nil
}

// flush writes the in-memory page to the spill file and resets it.
func (s *store) flush() {
	if s.page.Used == 0 {
		return
	}
	s.fs.Append(s.clock, s.name, s.page.Data())
	s.spilled += int64(s.page.Used)
	s.chunks = append(s.chunks, int64(s.page.Used))
	s.page.Used = 0
}

// finalize applies the SpillAlways policy at the end of the producing phase.
func (s *store) finalize() {
	if s.mode == SpillAlways {
		s.flush()
	}
}

// scanChunks streams the store's contents chunk by chunk: first the spilled
// chunks (each charged as a file-system read), then the resident page. Every
// chunk holds whole records because flush only writes whole records.
func (s *store) scanChunks(fn func(chunk []byte) error) error {
	off := int64(0)
	for _, n := range s.chunks {
		chunk, err := s.fs.ReadAt(s.clock, s.name, off, n)
		if err != nil {
			return err
		}
		if err := fn(chunk); err != nil {
			return err
		}
		off += n
	}
	if s.page.Used > 0 {
		return fn(s.page.Data())
	}
	return nil
}

// free releases the page and deletes the spill file.
func (s *store) free() {
	if s.page != nil {
		s.page.Release()
		s.page = nil
	}
	if s.spilled > 0 {
		s.fs.Remove(s.name)
		s.spilled = 0
		s.chunks = nil
	}
}

// spilledBytes reports how much of the store went out of core.
func (s *store) spilledBytes() int64 { return s.spilled }
