package mrmpi

import (
	"bytes"
	"container/heap"
	"fmt"
	"sort"

	"mimir/internal/kvbuf"
)

// SortKeys sorts this rank's KV data by key with cmp (nil = bytewise),
// mirroring MR-MPI's sort_keys call. Data that fits in the page is sorted
// in memory; spilled data is sorted with an external merge: each chunk is
// sorted in memory and written as a run, then the runs are k-way merged —
// every byte crosses the file system twice more, which is MR-MPI's real
// out-of-core sorting cost.
func (mr *MR) SortKeys(cmp func(a, b []byte) int) error {
	defer mr.phaseTimer(&mr.stats.Phases.Map)()
	if mr.kv == nil {
		return fmt.Errorf("mrmpi: SortKeys before Map")
	}
	if cmp == nil {
		cmp = bytes.Compare
	}
	if mr.kv.spilledBytes() == 0 {
		return mr.sortInMemory(cmp)
	}
	return mr.sortExternal(cmp)
}

// sortInMemory sorts the resident page in place.
func (mr *MR) sortInMemory(cmp func(a, b []byte) int) error {
	type rec struct{ k, enc []byte }
	var recs []rec
	err := mr.scanKV(func(k, v []byte) error {
		mr.charge(mr.cfg.Costs.PerRecord)
		enc, err := mr.hint.Encode(nil, k, v)
		if err != nil {
			return err
		}
		recs = append(recs, rec{k: append([]byte(nil), k...), enc: enc})
		return nil
	})
	if err != nil {
		return err
	}
	sort.SliceStable(recs, func(i, j int) bool { return cmp(recs[i].k, recs[j].k) < 0 })
	out, err := mr.newStore("sorted")
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := out.append(r.enc); err != nil {
			out.free()
			return err
		}
	}
	out.finalize()
	mr.stats.SpilledBytes += out.spilledBytes()
	mr.kv.free()
	mr.kv = out
	return mr.comm.Barrier()
}

// run is one sorted spill run during the external merge.
type run struct {
	name string
	data []byte // current buffered window (whole run; runs are page-sized)
	pos  int
	k, v []byte
	enc  int // encoded size of the current record
}

func (r *run) advance(h kvbuf.Hint) (ok bool, err error) {
	if r.pos >= len(r.data) {
		return false, nil
	}
	r.k, r.v, r.enc, err = h.Decode(r.data[r.pos:])
	if err != nil {
		return false, err
	}
	return true, nil
}

// runHeap orders runs by their current key.
type runHeap struct {
	runs []*run
	cmp  func(a, b []byte) int
}

func (h *runHeap) Len() int           { return len(h.runs) }
func (h *runHeap) Less(i, j int) bool { return h.cmp(h.runs[i].k, h.runs[j].k) < 0 }
func (h *runHeap) Swap(i, j int)      { h.runs[i], h.runs[j] = h.runs[j], h.runs[i] }
func (h *runHeap) Push(x any)         { h.runs = append(h.runs, x.(*run)) }
func (h *runHeap) Pop() any           { r := h.runs[len(h.runs)-1]; h.runs = h.runs[:len(h.runs)-1]; return r }

// sortExternal sorts spilled data: pass 1 sorts each chunk into a run file;
// pass 2 merges the runs through the page into a new store.
func (mr *MR) sortExternal(cmp func(a, b []byte) int) error {
	var runs []*run
	cleanup := func() {
		for _, r := range runs {
			mr.cfg.Spill.Remove(r.name)
		}
	}
	defer cleanup()

	chunkIdx := 0
	err := mr.kv.scanChunks(func(chunk []byte) error {
		type rec struct{ k, enc []byte }
		var recs []rec
		for pos := 0; pos < len(chunk); {
			k, _, n, err := mr.hint.Decode(chunk[pos:])
			if err != nil {
				return err
			}
			mr.charge(mr.cfg.Costs.PerRecord)
			recs = append(recs, rec{k: append([]byte(nil), k...), enc: append([]byte(nil), chunk[pos:pos+n]...)})
			pos += n
		}
		sort.SliceStable(recs, func(i, j int) bool { return cmp(recs[i].k, recs[j].k) < 0 })
		name := mr.spillName(fmt.Sprintf("run%d", chunkIdx))
		chunkIdx++
		var buf []byte
		for _, r := range recs {
			buf = append(buf, r.enc...)
		}
		mr.cfg.Spill.Append(mr.comm.Clock(), name, buf)
		mr.stats.SpilledBytes += int64(len(buf))
		runs = append(runs, &run{name: name})
		return nil
	})
	if err != nil {
		return err
	}

	// Load run windows and merge. Runs are at most one page each, so the
	// merge working set is bounded by the chunk count times the page size;
	// MR-MPI charges this against its scratch pages.
	h := &runHeap{cmp: cmp}
	for _, r := range runs {
		r.data, err = mr.cfg.Spill.ReadAll(mr.comm.Clock(), r.name)
		if err != nil {
			return err
		}
		ok, err := r.advance(mr.hint)
		if err != nil {
			return err
		}
		if ok {
			h.runs = append(h.runs, r)
		}
	}
	heap.Init(h)

	out, err := mr.newStore("merged")
	if err != nil {
		return err
	}
	for h.Len() > 0 {
		r := h.runs[0]
		if err := out.append(r.data[r.pos : r.pos+r.enc]); err != nil {
			out.free()
			return err
		}
		mr.charge(mr.cfg.Costs.PerRecord)
		r.pos += r.enc
		ok, err := r.advance(mr.hint)
		if err != nil {
			out.free()
			return err
		}
		if ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	out.finalize()
	mr.stats.SpilledBytes += out.spilledBytes()
	mr.kv.free()
	mr.kv = out
	return mr.comm.Barrier()
}

// GatherTo redistributes all KVs onto the first nprocs ranks (MR-MPI's
// gather call), e.g. to funnel a small result to one writer.
func (mr *MR) GatherTo(nprocs int) error {
	defer mr.phaseTimer(&mr.stats.Phases.Aggregate)()
	if mr.kv == nil {
		return fmt.Errorf("mrmpi: GatherTo before Map")
	}
	if nprocs < 1 || nprocs > mr.comm.Size() {
		return fmt.Errorf("mrmpi: GatherTo nprocs %d out of range [1,%d]", nprocs, mr.comm.Size())
	}
	dest := mr.comm.Rank() % nprocs
	p := mr.comm.Size()

	recvStore, err := mr.newStore("gather")
	if err != nil {
		return err
	}
	send := make([][]byte, p)
	err = mr.kv.scanChunks(func(chunk []byte) error {
		for i := range send {
			send[i] = nil
		}
		send[dest] = chunk
		_, err := mr.exchangeRound(send, recvStore, false)
		return err
	})
	if err != nil {
		recvStore.free()
		return err
	}
	for i := range send {
		send[i] = nil
	}
	for {
		allDone, err := mr.exchangeRound(send, recvStore, true)
		if err != nil {
			recvStore.free()
			return err
		}
		if allDone {
			break
		}
	}
	recvStore.finalize()
	mr.stats.SpilledBytes += recvStore.spilledBytes()
	mr.kv.free()
	mr.kv = recvStore
	return mr.comm.Barrier()
}
