package mrmpi

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mimir/internal/core"
	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
)

func TestNextKMVRecord(t *testing.T) {
	// Build one record: key "ab", values "x", "yz".
	rec := kmvHeader(nil, 2, 2)
	rec = append(rec, "ab"...)
	rec = append(rec, 1, 0, 0, 0, 'x')
	rec = append(rec, 2, 0, 0, 0, 'y', 'z')
	trailer := append(append([]byte{}, rec...), 0xFF) // extra byte after
	got, n, err := nextKMVRecord(trailer)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rec) || !bytes.Equal(got, rec) {
		t.Errorf("nextKMVRecord consumed %d of %d", n, len(rec))
	}
	key, nvals, vals, err := decodeKMV(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(key) != "ab" || nvals != 2 {
		t.Errorf("decodeKMV = %q, %d", key, nvals)
	}
	it := kvbuf.NewValueIter(vals, nvals, kvbuf.Varlen())
	v1, _ := it.Next()
	v2, _ := it.Next()
	if string(v1) != "x" || string(v2) != "yz" {
		t.Errorf("values = %q, %q", v1, v2)
	}
}

func TestNextKMVRecordCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},                         // short header
		kmvHeader(nil, 100, 1),            // key longer than record
		append(kmvHeader(nil, 1, 2), 'k'), // declared values missing
	}
	for i, c := range cases {
		if _, _, err := nextKMVRecord(c); err == nil {
			t.Errorf("case %d: corrupt KMV accepted", i)
		}
	}
}

func TestHotKeyOversizedKMVRecord(t *testing.T) {
	// One key with thousands of values produces a KMV record much larger
	// than the page; it must spill as an oversized record and reduce
	// correctly — the mechanism behind MR-MPI's failures on skewed data.
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{Bandwidth: 1e8})
	var mu sync.Mutex
	counts := map[string]uint64{}
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, PageSize: 512, Spill: spill})
		defer mr.Free()
		input := core.SliceInput([]core.Record{{Val: []byte(strings.Repeat("hot ", 500))}})
		if err := mr.Map(input, wcMap); err != nil {
			return err
		}
		if err := mr.Collate(); err != nil {
			return err
		}
		if err := mr.Reduce(wcReduce); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		return mr.ScanOutput(func(k, v []byte) error {
			counts[string(k)] += core.BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts["hot"] != 1000 {
		t.Errorf("count[hot] = %d, want 1000", counts["hot"])
	}
}

func TestHotKeyErrorModeFails(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 1, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{})
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, PageSize: 256, Mode: ErrorIfExceeds, Spill: spill})
		defer mr.Free()
		input := core.SliceInput([]core.Record{{Val: []byte(strings.Repeat("hot ", 200))}})
		if err := mr.Map(input, wcMap); err != nil {
			return err
		}
		return mr.Collate()
	})
	if !errors.Is(err, ErrPageOverflow) {
		t.Fatalf("err = %v, want ErrPageOverflow", err)
	}
}

func TestKeyOwnershipAfterAggregate(t *testing.T) {
	// After aggregate, all copies of a key live on exactly one rank.
	const p = 4
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{Bandwidth: 1e9})
	var mu sync.Mutex
	owner := map[string]int{}
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, Spill: spill})
		defer mr.Free()
		input := core.SliceInput([]core.Record{
			{Val: []byte(fmt.Sprintf("shared alpha beta gamma rank%d", c.Rank()))},
		})
		if err := mr.Map(input, wcMap); err != nil {
			return err
		}
		if err := mr.Aggregate(); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		return mr.ScanOutput(func(k, v []byte) error {
			if prev, ok := owner[string(k)]; ok && prev != c.Rank() {
				return fmt.Errorf("key %q on ranks %d and %d", k, prev, c.Rank())
			}
			owner[string(k)] = c.Rank()
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(owner) != 4+p {
		t.Errorf("unique keys = %d, want %d", len(owner), 4+p)
	}
}

func TestMultiCycleMapReduce(t *testing.T) {
	// MR-MPI reuses the same object for iterative jobs: the reduce output
	// becomes the next cycle's data, and Map replaces it.
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{Bandwidth: 1e9})
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, Spill: spill})
		defer mr.Free()
		for cycle := 0; cycle < 3; cycle++ {
			input := core.SliceInput([]core.Record{
				{Val: []byte(fmt.Sprintf("cycle%d common words here", cycle))},
			})
			if err := mr.Map(input, wcMap); err != nil {
				return err
			}
			if err := mr.Collate(); err != nil {
				return err
			}
			if err := mr.Reduce(wcReduce); err != nil {
				return err
			}
			n := int64(0)
			if err := mr.ScanOutput(func(k, v []byte) error { n++; return nil }); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if arena.Used() != 0 {
		t.Errorf("arena used %d after cycles", arena.Used())
	}
}

func TestStoreScanChunksRecordAligned(t *testing.T) {
	// Chunks returned by scanChunks must decode independently even when
	// flushes happened at odd record boundaries.
	arena := mem.NewArena(0)
	fs := pfs.New(pfs.Config{Bandwidth: 1e9})
	clk := mpi.NewWorld(mpi.Config{Size: 1}).Clock(0)
	s, err := newStore(arena, 100, SpillWhenNeeded, fs, clk, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer s.free()
	h := kvbuf.DefaultHint()
	var want []string
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%02d", i)
		v := strings.Repeat("v", i%13)
		enc, err := h.Encode(nil, []byte(k), []byte(v))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.append(enc); err != nil {
			t.Fatal(err)
		}
		want = append(want, k+"="+v)
	}
	var got []string
	err = s.scanChunks(func(chunk []byte) error {
		for pos := 0; pos < len(chunk); {
			k, v, n, err := h.Decode(chunk[pos:])
			if err != nil {
				return err
			}
			got = append(got, string(k)+"="+string(v))
			pos += n
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if s.spilledBytes() == 0 {
		t.Error("expected spilling with 100-byte page")
	}
}

func TestSpillAlwaysFlushesAtFinalize(t *testing.T) {
	arena := mem.NewArena(0)
	fs := pfs.New(pfs.Config{Bandwidth: 1e9})
	clk := mpi.NewWorld(mpi.Config{Size: 1}).Clock(0)
	s, err := newStore(arena, 1<<20, SpillAlways, fs, clk, "t2")
	if err != nil {
		t.Fatal(err)
	}
	defer s.free()
	if err := s.append([]byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if s.spilledBytes() != 0 {
		t.Fatal("spilled before finalize")
	}
	s.finalize()
	if s.spilledBytes() != 4 {
		t.Errorf("spilled %d bytes after finalize, want 4", s.spilledBytes())
	}
}

func TestOutOfCoreConvertManyPartitions(t *testing.T) {
	// Enough KVs to force the partitioned out-of-core convert path with
	// several partitions; grouped output must be exact.
	w := mpi.NewWorld(mpi.Config{Size: 1, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{Bandwidth: 1e9})
	want := map[string]uint64{}
	got := map[string]uint64{}
	var lines []core.Record
	for i := 0; i < 200; i++ {
		line := fmt.Sprintf("w%d x%d y%d z%d", i%17, i%5, i%29, i)
		lines = append(lines, core.Record{Val: []byte(line)})
		for _, wd := range strings.Fields(line) {
			want[wd]++
		}
	}
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, PageSize: 256, Spill: spill})
		defer mr.Free()
		if err := mr.Map(core.SliceInput(lines), wcMap); err != nil {
			return err
		}
		if err := mr.Collate(); err != nil {
			return err
		}
		if err := mr.Reduce(wcReduce); err != nil {
			return err
		}
		return mr.ScanOutput(func(k, v []byte) error {
			got[string(k)] += core.BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	checkWC(t, got, want)
}
