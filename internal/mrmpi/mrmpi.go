package mrmpi

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"mimir/internal/core"
	"mimir/internal/kvbuf"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
	"mimir/internal/simtime"
)

// Config configures an MR-MPI instance on one rank.
type Config struct {
	// Arena is the node memory pool pages are charged to. Required.
	Arena *mem.Arena
	// PageSize is the MR-MPI page size (default 64 KiB, the paper's 64 MB;
	// users raise it to 512 KiB / 128 KiB to use Comet / Mira memory fully).
	PageSize int
	// Mode is the out-of-core setting.
	Mode Mode
	// Spill is the parallel file system pages overflow to. Required.
	Spill *pfs.FS
	// Costs are the simulated compute costs (shared with the Mimir engine).
	Costs core.Costs
}

// PhaseTimes breaks a rank's simulated time down by the explicit MR-MPI
// phases (Compress time is folded into Map).
type PhaseTimes struct {
	Map, Aggregate, Convert, Reduce float64
}

// Total returns the summed phase time.
func (p PhaseTimes) Total() float64 { return p.Map + p.Aggregate + p.Convert + p.Reduce }

// Stats reports what one rank observed.
type Stats struct {
	// Phases is the per-phase simulated time breakdown.
	Phases PhaseTimes
	// SpilledBytes is the total data written out of core; the paper's
	// "in memory" criterion is SpilledBytes == 0 on every rank.
	SpilledBytes int64
	// ShuffledBytes is the intermediate data this rank sent in aggregate.
	ShuffledBytes int64
	MapOutKVs     int64
	OutputKVs     int64
}

// MR mirrors the MR-MPI library object: it owns the current KV (and, after
// convert, KMV) dataset and exposes the explicit phase calls of the MR-MPI
// API — Map, Compress, Aggregate, Convert, Reduce — each separated by
// global synchronization.
type MR struct {
	comm *mpi.Comm
	cfg  Config
	hint kvbuf.Hint // MR-MPI has no KV-hint: always the 8-byte header

	kv       *store // current KV data
	kmv      *store // current KMV data (after Convert)
	stats    Stats
	instance int64 // process-unique id for spill names
	seq      int   // spill-name sequence
}

// instanceSeq disambiguates spill file names across MR instances sharing a
// spill file system (e.g. the per-stage instances of an iterative job).
var instanceSeq atomic.Int64

// New creates an MR-MPI instance for this rank. Spill file names embed the
// rank and a process-unique instance id, so any number of MR objects may
// share one spill file system.
func New(comm *mpi.Comm, cfg Config) *MR {
	if cfg.Arena == nil || cfg.Spill == nil {
		panic("mrmpi: Config.Arena and Config.Spill are required")
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 64 << 10
	}
	return &MR{comm: comm, cfg: cfg, hint: kvbuf.DefaultHint(), instance: instanceSeq.Add(1)}
}

// Stats returns this rank's counters.
func (mr *MR) Stats() Stats { return mr.stats }

func (mr *MR) spillName(kind string) string {
	mr.seq++
	return fmt.Sprintf("mrmpi.i%d.rank%d.%s.%d", mr.instance, mr.comm.Rank(), kind, mr.seq)
}

func (mr *MR) newStore(kind string) (*store, error) {
	return newStore(mr.cfg.Arena, mr.cfg.PageSize, mr.cfg.Mode, mr.cfg.Spill,
		mr.comm.Clock(), mr.spillName(kind))
}

func (mr *MR) charge(sec float64) { mr.comm.Clock().Advance(sec, simtime.Compute) }

// phaseTimer accumulates the simulated time of a phase call:
//
//	defer mr.phaseTimer(&mr.stats.Phases.Map)()
func (mr *MR) phaseTimer(dst *float64) func() {
	start := mr.comm.Clock().Now()
	return func() { *dst += mr.comm.Clock().Now() - start }
}

// Map runs the user map callback over this rank's input, storing emitted
// KVs in a fresh one-page KV store (MR-MPI's map phase needs 1 page). Like
// MR-MPI, the phase ends with a barrier.
func (mr *MR) Map(input core.Input, mapFn core.MapFunc) error {
	defer mr.phaseTimer(&mr.stats.Phases.Map)()
	if mr.kv != nil {
		mr.kv.free()
	}
	kv, err := mr.newStore("kv")
	if err != nil {
		return err
	}
	mr.kv = kv
	em := &storeEmitter{mr: mr, dst: kv}
	err = input(func(rec core.Record) error {
		mr.charge(float64(len(rec.Key)+len(rec.Val)) * mr.cfg.Costs.MapPerByte)
		return mapFn(rec, em)
	})
	if err != nil {
		return err
	}
	kv.finalize()
	mr.stats.SpilledBytes += kv.spilledBytes()
	return mr.comm.Barrier()
}

// storeEmitter encodes emitted KVs into an MR-MPI store.
type storeEmitter struct {
	mr  *MR
	dst *store
	buf []byte
}

func (e *storeEmitter) Emit(k, v []byte) error {
	e.mr.charge(e.mr.cfg.Costs.PerRecord + float64(len(k)+len(v))*e.mr.cfg.Costs.KVPerByte)
	var err error
	e.buf, err = e.mr.hint.Encode(e.buf[:0], k, v)
	if err != nil {
		return err
	}
	e.mr.stats.MapOutKVs++
	return e.dst.append(e.buf)
}

// MapKV re-maps the current KV data through a user callback, producing a
// new KV dataset — MR-MPI's map(MapReduce*) variant for iterative jobs that
// transform their own output. The old data is released once consumed.
func (mr *MR) MapKV(mapFn core.MapFunc) error {
	defer mr.phaseTimer(&mr.stats.Phases.Map)()
	if mr.kv == nil {
		return fmt.Errorf("mrmpi: MapKV before Map")
	}
	out, err := mr.newStore("kv")
	if err != nil {
		return err
	}
	em := &storeEmitter{mr: mr, dst: out}
	err = mr.scanKV(func(k, v []byte) error {
		mr.charge(float64(len(k)+len(v)) * mr.cfg.Costs.MapPerByte)
		return mapFn(core.Record{Key: k, Val: v}, em)
	})
	if err != nil {
		out.free()
		return err
	}
	out.finalize()
	mr.stats.SpilledBytes += out.spilledBytes()
	mr.kv.free()
	mr.kv = out
	return mr.comm.Barrier()
}

// Compress applies MR-MPI's local compression: KVs with the same key on this
// rank are merged with the combiner before aggregation. MR-MPI charges two
// scratch pages for the hash structures; the number of resident pages — and
// thus peak memory — does not change with the data, which is why the paper
// observes no memory benefit from compression in MR-MPI.
func (mr *MR) Compress(combiner core.CombineFunc) error {
	defer mr.phaseTimer(&mr.stats.Phases.Map)()
	if mr.kv == nil {
		return fmt.Errorf("mrmpi: Compress before Map")
	}
	// 2 scratch pages for the hash buckets.
	scratch := int64(2 * mr.cfg.PageSize)
	if err := mr.cfg.Arena.Alloc(scratch); err != nil {
		return err
	}
	defer mr.cfg.Arena.Free(scratch)

	merged := map[string][]byte{}
	var order []string
	err := mr.scanKV(func(k, v []byte) error {
		mr.charge(mr.cfg.Costs.PerRecord + float64(len(k)+len(v))*mr.cfg.Costs.KVPerByte)
		if old, ok := merged[string(k)]; ok {
			nv, err := combiner(k, old, v)
			if err != nil {
				return err
			}
			merged[string(k)] = append([]byte(nil), nv...)
			return nil
		}
		merged[string(k)] = append([]byte(nil), v...)
		order = append(order, string(k))
		return nil
	})
	if err != nil {
		return err
	}
	out, err := mr.newStore("kvc")
	if err != nil {
		return err
	}
	var buf []byte
	for _, k := range order {
		buf, err = mr.hint.Encode(buf[:0], []byte(k), merged[k])
		if err != nil {
			out.free()
			return err
		}
		if err := out.append(buf); err != nil {
			out.free()
			return err
		}
	}
	out.finalize()
	mr.stats.SpilledBytes += out.spilledBytes()
	mr.kv.free()
	mr.kv = out
	return mr.comm.Barrier()
}

// scanKV iterates the current KV store record by record.
func (mr *MR) scanKV(fn func(k, v []byte) error) error {
	return mr.kv.scanChunks(func(chunk []byte) error {
		for pos := 0; pos < len(chunk); {
			k, v, n, err := mr.hint.Decode(chunk[pos:])
			if err != nil {
				return fmt.Errorf("mrmpi: corrupt KV store: %w", err)
			}
			if err := fn(k, v); err != nil {
				return err
			}
			pos += n
		}
		return nil
	})
}

// Aggregate performs the all-to-all exchange of KVs so that all KVs with the
// same key land on the same rank. Per the paper's Figure 3, MR-MPI's
// aggregate holds seven pages at once: the map output page, two temporary
// partitioning buffers, the send buffer, a double-size receive buffer, and
// the convert input page. The exchange processes the KV data one page at a
// time with one MPI_Alltoallv per round.
func (mr *MR) Aggregate() error {
	defer mr.phaseTimer(&mr.stats.Phases.Aggregate)()
	if mr.kv == nil {
		return fmt.Errorf("mrmpi: Aggregate before Map")
	}
	p := mr.comm.Size()

	// Transient pages: 2 temp + 1 send + 2 recv. The map output page (held
	// by mr.kv) and the convert input page (held by the new store) complete
	// the seven.
	transient := int64(5 * mr.cfg.PageSize)
	if err := mr.cfg.Arena.Alloc(transient); err != nil {
		return fmt.Errorf("mrmpi: allocating aggregate buffers: %w", err)
	}
	defer mr.cfg.Arena.Free(transient)

	recvStore, err := mr.newStore("agg")
	if err != nil {
		return err
	}

	// Process this rank's KV data one chunk (at most one page) at a time:
	// partition the chunk into per-destination buffers and run one Alltoallv
	// round per chunk. Every rank keeps joining rounds (with empty payloads
	// once its own data is exhausted) until all ranks are done.
	send := make([][]byte, p)
	partitionAndExchange := func(chunk []byte) error {
		for i := range send {
			send[i] = nil
		}
		for pos := 0; pos < len(chunk); {
			k, _, n, err := mr.hint.Decode(chunk[pos:])
			if err != nil {
				return fmt.Errorf("mrmpi: corrupt chunk: %w", err)
			}
			dest := int(kvbuf.HashKey(k) % uint64(p))
			send[dest] = append(send[dest], chunk[pos:pos+n]...)
			pos += n
		}
		_, err := mr.exchangeRound(send, recvStore, false)
		return err
	}
	if err := mr.kv.scanChunks(partitionAndExchange); err != nil {
		recvStore.free()
		return err
	}
	// Final rounds with the done flag until every rank is finished.
	for i := range send {
		send[i] = nil
	}
	for {
		allDone, err := mr.exchangeRound(send, recvStore, true)
		if err != nil {
			recvStore.free()
			return err
		}
		if allDone {
			break
		}
	}
	recvStore.finalize()
	mr.stats.SpilledBytes += recvStore.spilledBytes()
	mr.kv.free()
	mr.kv = recvStore
	return mr.comm.Barrier()
}

// exchangeRound is one aggregate round: every rank swaps its partitioned
// chunk with Alltoallv, appends what it received to dst, then all ranks
// agree via Allreduce whether everyone has exhausted its data.
func (mr *MR) exchangeRound(send [][]byte, dst *store, done bool) (allDone bool, err error) {
	for _, b := range send {
		mr.stats.ShuffledBytes += int64(len(b))
	}
	recv, err := mr.comm.Alltoallv(send)
	if err != nil {
		return false, err
	}
	var recvBytes int
	for _, chunk := range recv {
		recvBytes += len(chunk)
		for pos := 0; pos < len(chunk); {
			_, _, n, err := mr.hint.Decode(chunk[pos:])
			if err != nil {
				return false, fmt.Errorf("mrmpi: corrupt received chunk: %w", err)
			}
			if err := dst.append(chunk[pos : pos+n]); err != nil {
				return false, err
			}
			pos += n
		}
	}
	mr.charge(float64(recvBytes) * mr.cfg.Costs.KVPerByte)
	flag := int64(0)
	if done {
		flag = 1
	}
	sum, err := mr.comm.AllreduceInt64([]int64{flag}, mpi.OpSum)
	if err != nil {
		return false, err
	}
	return sum[0] == int64(mr.comm.Size()), nil
}

// kmvHeader encodes a KMV record header: key length and value count.
func kmvHeader(buf []byte, klen, nvals int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(klen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nvals))
	return buf
}

func decodeKMV(rec []byte) (key []byte, nvals int, values []byte, err error) {
	if len(rec) < 8 {
		return nil, 0, nil, fmt.Errorf("mrmpi: short KMV record")
	}
	klen := int(binary.LittleEndian.Uint32(rec[0:]))
	nvals = int(binary.LittleEndian.Uint32(rec[4:]))
	if 8+klen > len(rec) {
		return nil, 0, nil, fmt.Errorf("mrmpi: corrupt KMV record")
	}
	return rec[8 : 8+klen], nvals, rec[8+klen:], nil
}
