package mrmpi

import (
	"fmt"

	"mimir/internal/core"
	"mimir/internal/kvbuf"
)

// Convert merges the current KVs by key into KMV records (MR-MPI's convert
// phase, 4 pages: the KV input page, two hash-structure pages, and the KMV
// output page). When the KV data fits in one page the grouping happens in
// memory; otherwise MR-MPI goes out of core, first hash-partitioning the
// spilled KVs into partition files sized to fit a page and then grouping
// each partition — every byte of an oversized dataset crosses the parallel
// file system several more times, which is the heart of Figure 1's cliff.
func (mr *MR) Convert() error {
	defer mr.phaseTimer(&mr.stats.Phases.Convert)()
	if mr.kv == nil {
		return fmt.Errorf("mrmpi: Convert before Map/Aggregate")
	}
	// 2 scratch pages for hash structures.
	scratch := int64(2 * mr.cfg.PageSize)
	if err := mr.cfg.Arena.Alloc(scratch); err != nil {
		return fmt.Errorf("mrmpi: allocating convert buffers: %w", err)
	}
	defer mr.cfg.Arena.Free(scratch)

	kmv, err := mr.newStore("kmv")
	if err != nil {
		return err
	}

	if mr.kv.spilledBytes() == 0 {
		// In-memory case: group the resident page directly.
		if err := mr.convertGroup(mr.scanKV, kmv); err != nil {
			kmv.free()
			return err
		}
	} else if err := mr.convertOutOfCore(kmv); err != nil {
		kmv.free()
		return err
	}

	kmv.finalize()
	mr.stats.SpilledBytes += kmv.spilledBytes()
	mr.kv.free()
	mr.kv = nil
	if mr.kmv != nil {
		mr.kmv.free()
	}
	mr.kmv = kmv
	return mr.comm.Barrier()
}

// convertGroup groups the KVs produced by scan into KMV records appended to
// out. The grouping hash lives in process memory; its arena footprint is
// the two statically charged scratch pages, faithful to MR-MPI's fixed page
// accounting.
func (mr *MR) convertGroup(scan func(func(k, v []byte) error) error, out *store) error {
	type group struct {
		nvals int
		vals  []byte // concatenated [vlen][value] entries
	}
	groups := map[string]*group{}
	var order []string
	err := scan(func(k, v []byte) error {
		mr.charge(mr.cfg.Costs.PerRecord + float64(len(k)+len(v))*mr.cfg.Costs.ReducePerByte)
		g, ok := groups[string(k)]
		if !ok {
			g = &group{}
			groups[string(k)] = g
			order = append(order, string(k))
		}
		var lenb [4]byte
		lenb[0] = byte(len(v))
		lenb[1] = byte(len(v) >> 8)
		lenb[2] = byte(len(v) >> 16)
		lenb[3] = byte(len(v) >> 24)
		g.vals = append(g.vals, lenb[:]...)
		g.vals = append(g.vals, v...)
		g.nvals++
		return nil
	})
	if err != nil {
		return err
	}
	var rec []byte
	for _, k := range order {
		g := groups[k]
		rec = kmvHeader(rec[:0], len(k), g.nvals)
		rec = append(rec, k...)
		rec = append(rec, g.vals...)
		if err := out.append(rec); err != nil {
			return err
		}
	}
	return nil
}

// convertOutOfCore handles KV data larger than a page: pass 1 routes every
// KV into one of NP hash-partition spill files (NP chosen so one partition's
// KVs fit in a page); pass 2 reads each partition back and groups it in
// memory.
func (mr *MR) convertOutOfCore(out *store) error {
	total := mr.kv.totBytes
	np := int((total + int64(mr.cfg.PageSize) - 1) / int64(mr.cfg.PageSize))
	if np < 2 {
		np = 2
	}

	// Pass 1: partition. Each partition is itself a store with one page
	// resident at a time? No — MR-MPI streams through its existing pages;
	// partitions go straight to the file system. We buffer per-partition
	// appends in small batches purely to bound simulated op counts.
	names := make([]string, np)
	bufs := make([][]byte, np)
	for i := range names {
		names[i] = mr.spillName(fmt.Sprintf("cvt%d", i))
	}
	const batch = 4 << 10
	flush := func(i int) {
		if len(bufs[i]) > 0 {
			mr.cfg.Spill.Append(mr.comm.Clock(), names[i], bufs[i])
			mr.stats.SpilledBytes += int64(len(bufs[i]))
			bufs[i] = bufs[i][:0]
		}
	}
	var enc []byte
	err := mr.scanKV(func(k, v []byte) error {
		mr.charge(mr.cfg.Costs.PerRecord)
		i := int(kvbuf.HashKey(k) % uint64(np))
		var err error
		enc, err = mr.hint.Encode(enc[:0], k, v)
		if err != nil {
			return err
		}
		bufs[i] = append(bufs[i], enc...)
		if len(bufs[i]) >= batch {
			flush(i)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i := range bufs {
		flush(i)
	}
	defer func() {
		for _, n := range names {
			mr.cfg.Spill.Remove(n)
		}
	}()

	// Pass 2: group each partition in memory.
	for i := 0; i < np; i++ {
		if mr.cfg.Spill.Size(names[i]) == 0 {
			continue
		}
		data, err := mr.cfg.Spill.ReadAll(mr.comm.Clock(), names[i])
		if err != nil {
			return err
		}
		scan := func(fn func(k, v []byte) error) error {
			for pos := 0; pos < len(data); {
				k, v, n, err := mr.hint.Decode(data[pos:])
				if err != nil {
					return fmt.Errorf("mrmpi: corrupt partition file: %w", err)
				}
				if err := fn(k, v); err != nil {
					return err
				}
				pos += n
			}
			return nil
		}
		if err := mr.convertGroup(scan, out); err != nil {
			return err
		}
	}
	return nil
}

// Collate is MR-MPI's aggregate-then-convert convenience call.
func (mr *MR) Collate() error {
	if err := mr.Aggregate(); err != nil {
		return err
	}
	return mr.Convert()
}

// Reduce runs the user reduce callback over the KMV records, producing a new
// KV dataset (MR-MPI's reduce phase, 3 pages: KMV input, KV output, and one
// scratch page). The output becomes the MR object's current KV data, ready
// for another MapReduce cycle or retrieval via ScanOutput.
func (mr *MR) Reduce(reduceFn core.ReduceFunc) error {
	defer mr.phaseTimer(&mr.stats.Phases.Reduce)()
	if mr.kmv == nil {
		return fmt.Errorf("mrmpi: Reduce before Convert")
	}
	scratch := int64(mr.cfg.PageSize)
	if err := mr.cfg.Arena.Alloc(scratch); err != nil {
		return fmt.Errorf("mrmpi: allocating reduce buffers: %w", err)
	}
	defer mr.cfg.Arena.Free(scratch)

	out, err := mr.newStore("out")
	if err != nil {
		return err
	}
	em := &storeEmitter{mr: mr, dst: out}
	err = mr.kmv.scanChunks(func(chunk []byte) error {
		// Each chunk holds whole KMV records.
		for pos := 0; pos < len(chunk); {
			rec, n, err := nextKMVRecord(chunk[pos:])
			if err != nil {
				return err
			}
			key, nvals, vals, err := decodeKMV(rec)
			if err != nil {
				return err
			}
			mr.charge(mr.cfg.Costs.PerRecord + float64(len(rec))*mr.cfg.Costs.ReducePerByte)
			it := kvbuf.NewValueIter(vals, nvals, kvbuf.Varlen())
			if err := reduceFn(key, it, em); err != nil {
				return err
			}
			pos += n
		}
		return nil
	})
	if err != nil {
		out.free()
		return err
	}
	out.finalize()
	mr.stats.SpilledBytes += out.spilledBytes()
	mr.kmv.free()
	mr.kmv = nil
	mr.kv = out
	mr.stats.OutputKVs = out.nrec
	return mr.comm.Barrier()
}

// nextKMVRecord returns the first whole KMV record at the front of buf and
// its encoded length.
func nextKMVRecord(buf []byte) ([]byte, int, error) {
	key, nvals, vals, err := decodeKMV(buf)
	if err != nil {
		return nil, 0, err
	}
	pos := 0
	for i := 0; i < nvals; i++ {
		if pos+4 > len(vals) {
			return nil, 0, fmt.Errorf("mrmpi: truncated KMV values")
		}
		vlen := int(uint32(vals[pos]) | uint32(vals[pos+1])<<8 | uint32(vals[pos+2])<<16 | uint32(vals[pos+3])<<24)
		pos += 4 + vlen
		if pos > len(vals) {
			return nil, 0, fmt.Errorf("mrmpi: truncated KMV value %d", i)
		}
	}
	n := 8 + len(key) + pos
	return buf[:n], n, nil
}

// ScanOutput iterates the final KV data (after Reduce, or after Map for
// map-only use). Spilled data is read back with its I/O cost charged.
func (mr *MR) ScanOutput(fn func(k, v []byte) error) error {
	if mr.kv == nil {
		return fmt.Errorf("mrmpi: no output data")
	}
	return mr.scanKV(fn)
}

// Free releases all stores.
func (mr *MR) Free() {
	if mr.kv != nil {
		mr.kv.free()
		mr.kv = nil
	}
	if mr.kmv != nil {
		mr.kmv.free()
		mr.kmv = nil
	}
}
