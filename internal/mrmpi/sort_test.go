package mrmpi

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"mimir/internal/core"
	"mimir/internal/mem"
	"mimir/internal/mpi"
	"mimir/internal/pfs"
)

// runSortKeys maps the given lines, sorts, and returns each rank's key
// order.
func runSortKeys(t *testing.T, p, pageSize int, lines []string) [][]string {
	t.Helper()
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{Bandwidth: 1e9})
	orders := make([][]string, p)
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, PageSize: pageSize, Spill: spill})
		defer mr.Free()
		var mine []core.Record
		for i, l := range lines {
			if i%p == c.Rank() {
				mine = append(mine, core.Record{Val: []byte(l)})
			}
		}
		if err := mr.Map(core.SliceInput(mine), wcMap); err != nil {
			return err
		}
		if err := mr.SortKeys(nil); err != nil {
			return err
		}
		var order []string
		err := mr.ScanOutput(func(k, v []byte) error {
			order = append(order, string(k))
			return nil
		})
		orders[c.Rank()] = order
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if arena.Used() != 0 {
		t.Fatalf("arena used %d after sort", arena.Used())
	}
	return orders
}

func checkSorted(t *testing.T, orders [][]string, wantTotal int) {
	t.Helper()
	total := 0
	for r, order := range orders {
		total += len(order)
		for i := 1; i < len(order); i++ {
			if order[i-1] > order[i] {
				t.Fatalf("rank %d not sorted at %d: %q > %q", r, i, order[i-1], order[i])
			}
		}
	}
	if total != wantTotal {
		t.Fatalf("sorted %d records, want %d", total, wantTotal)
	}
}

func TestSortKeysInMemory(t *testing.T) {
	lines := []string{"delta alpha echo", "charlie bravo foxtrot"}
	orders := runSortKeys(t, 2, 64<<10, lines)
	checkSorted(t, orders, 6)
}

func TestSortKeysExternal(t *testing.T) {
	// A tiny page forces the run-merge path.
	lines := make([]string, 50)
	nwords := 0
	for i := range lines {
		lines[i] = fmt.Sprintf("w%02d q%02d a%02d", (i*7)%50, (i*3)%50, (i*11)%50)
		nwords += 3
	}
	orders := runSortKeys(t, 2, 128, lines)
	checkSorted(t, orders, nwords)
}

func TestSortKeysCustomComparator(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 1, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{Bandwidth: 1e9})
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, Spill: spill})
		defer mr.Free()
		if err := mr.Map(core.SliceInput([]core.Record{{Val: []byte("a c b d")}}), wcMap); err != nil {
			return err
		}
		// Descending order.
		desc := func(a, b []byte) int { return -bytes.Compare(a, b) }
		if err := mr.SortKeys(desc); err != nil {
			return err
		}
		var order []string
		if err := mr.ScanOutput(func(k, v []byte) error {
			order = append(order, string(k))
			return nil
		}); err != nil {
			return err
		}
		if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] > order[j] }) {
			return fmt.Errorf("not descending: %v", order)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: external sort output equals in-memory sort output for random
// word multisets.
func TestSortKeysExternalMatchesInMemoryProperty(t *testing.T) {
	f := func(seed uint16) bool {
		n := int(seed%40) + 5
		lines := make([]string, n)
		for i := range lines {
			lines[i] = fmt.Sprintf("t%d u%d", (int(seed)+i*13)%23, (int(seed)+i*7)%31)
		}
		inMem := runSortKeys(t, 1, 1<<20, lines)
		ext := runSortKeys(t, 1, 64, lines)
		if len(inMem[0]) != len(ext[0]) {
			return false
		}
		for i := range inMem[0] {
			if inMem[0][i] != ext[0][i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSortKeysBeforeMapFails(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 1, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{})
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, Spill: spill})
		if err := mr.SortKeys(nil); err == nil {
			return fmt.Errorf("SortKeys before Map succeeded")
		}
		if err := mr.GatherTo(1); err == nil {
			return fmt.Errorf("GatherTo before Map succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherTo(t *testing.T) {
	const p = 4
	w := mpi.NewWorld(mpi.Config{Size: p, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{Bandwidth: 1e9})
	var mu sync.Mutex
	perRank := make([]int64, p)
	var total int64
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, Spill: spill})
		defer mr.Free()
		input := core.SliceInput([]core.Record{
			{Val: []byte(fmt.Sprintf("r%d w1 w2 w3", c.Rank()))},
		})
		if err := mr.Map(input, wcMap); err != nil {
			return err
		}
		if err := mr.GatherTo(1); err != nil {
			return err
		}
		n := int64(0)
		if err := mr.ScanOutput(func(k, v []byte) error { n++; return nil }); err != nil {
			return err
		}
		mu.Lock()
		perRank[c.Rank()] = n
		total += n
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 16 {
		t.Errorf("gathered %d KVs, want 16", total)
	}
	if perRank[0] != 16 {
		t.Errorf("rank 0 holds %d, want all 16", perRank[0])
	}
	for r := 1; r < p; r++ {
		if perRank[r] != 0 {
			t.Errorf("rank %d holds %d after GatherTo(1)", r, perRank[r])
		}
	}
}

func TestMapKV(t *testing.T) {
	// Re-map the current KVs: double every count, upper-case every key.
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{Bandwidth: 1e9})
	var mu sync.Mutex
	counts := map[string]uint64{}
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, Spill: spill})
		defer mr.Free()
		if err := mr.Map(core.SliceInput([]core.Record{
			{Val: []byte("a b a")},
		}), wcMap); err != nil {
			return err
		}
		double := func(rec core.Record, emit core.Emitter) error {
			return emit.Emit(bytes.ToUpper(rec.Key), core.Uint64Bytes(2*core.BytesUint64(rec.Val)))
		}
		if err := mr.MapKV(double); err != nil {
			return err
		}
		if err := mr.Collate(); err != nil {
			return err
		}
		if err := mr.Reduce(wcReduce); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		return mr.ScanOutput(func(k, v []byte) error {
			counts[string(k)] += core.BytesUint64(v)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both ranks map "a b a": A appears 2 ranks x 2 times x 2 = 8, B = 4.
	if counts["A"] != 8 || counts["B"] != 4 {
		t.Errorf("counts = %v, want A=8 B=4", counts)
	}
	w2 := mpi.NewWorld(mpi.Config{Size: 1, Net: testNet()})
	err = w2.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, Spill: spill})
		if err := mr.MapKV(double()); err == nil {
			return fmt.Errorf("MapKV before Map succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func double() core.MapFunc {
	return func(rec core.Record, emit core.Emitter) error { return nil }
}

func TestGatherToValidation(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Size: 2, Net: testNet()})
	arena := mem.NewArena(0)
	spill := pfs.New(pfs.Config{})
	err := w.Run(func(c *mpi.Comm) error {
		mr := New(c, Config{Arena: arena, Spill: spill})
		defer mr.Free()
		if err := mr.Map(core.SliceInput(nil), wcMap); err != nil {
			return err
		}
		if err := mr.GatherTo(0); err == nil {
			return fmt.Errorf("GatherTo(0) accepted")
		}
		if err := mr.GatherTo(3); err == nil {
			return fmt.Errorf("GatherTo(>size) accepted")
		}
		// A valid gather with empty data must still complete collectively.
		return mr.GatherTo(1)
	})
	if err != nil {
		t.Fatal(err)
	}
}
